"""Buffer scheduling across transparent copies (paper Section 4.1).

When a producer filter writes to a logical stream whose consumer has
transparent copies, a *write scheduler* picks the copy each buffer goes
to.  DataCutter supports:

* **Round-Robin (RR)** — strict rotation.  With bounded outstanding
  buffers per consumer, a slow node causes head-of-line blocking: the
  rotation *must* wait for the slow copy's slot, which is exactly the
  pathology Figure 10 measures.
* **Demand-Driven (DD)** — "a producer filter chooses the consumer
  filter with the minimum number of unacknowledged buffers".  Consumers
  acknowledge a buffer when they start processing it, so fast copies
  drain their slots quicker and attract more work (Figure 11).

Both schedulers bound outstanding (unacknowledged) buffers per consumer
at ``max_outstanding`` (default 2: one in processing + one in flight —
the classic double-buffering depth for pipelining).

Every per-buffer decision here is O(1) in the number of consumer
copies: liveness is a counter (not an ``all(dead)`` scan) and the
demand-driven choice reads the lowest non-empty unacked bucket instead
of scanning every copy.  That independence from fan-out is what lets
the ``serve`` scenario (docs/SERVING.md) grow from 64 to 1024 hosts at
flat per-event cost.

:class:`AdmissionQueue` is the serving-side complement: a bounded
drop-tail queue in front of a filter, so offered load beyond capacity
is *refused and counted* instead of growing an unbounded backlog.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, insort
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (Any, Deque, Dict, Generator, Iterable, List, Optional,
                    Set)

from repro.errors import DataCutterError
from repro.sim import Event, Simulator
from repro.sim.monitor import Tally

__all__ = [
    "WriteScheduler",
    "RoundRobinScheduler",
    "DemandDrivenScheduler",
    "make_scheduler",
    "AdmissionQueue",
    "ReplicationPolicy",
    "active_replication_policy",
    "active_replication_fingerprint",
    "set_active_replication_policy",
    "replicating",
]

DEFAULT_MAX_OUTSTANDING = 2

#: Loser-cancellation modes (docs/TAILS.md):
#: ``lazy`` — losers are cancelled the moment a winner is decided:
#: queued replicas are retracted before they start and in-flight
#: compute is torn down through the kernel's lazy ``Event.cancel``
#: (an O(1) heap tombstone, PR 3);
#: ``none`` — losers run to completion and are retracted only when they
#: try to finish (the ablation that measures what cancellation saves).
CANCEL_MODES = ("lazy", "none")


@dataclass(frozen=True)
class ReplicationPolicy:
    """Replicated dispatch: send each unit of work to *k* copies, take
    the first finisher (RepNet's recipe, restated at the filter layer).

    ``hedge_us`` staggers the duplicates: replica 0 is dispatched
    immediately and replicas 1..k-1 only if the unit is still undecided
    ``hedge_us`` microseconds later — Dean's hedged request, which buys
    the tail recovery of replication at a fraction of the duplicate
    load.  ``hedge_us=0`` races all k replicas from the start (the
    configuration the determinism tests exercise); ``None`` means "no
    hedging" and is treated as 0 by the tails scenario.

    Like :class:`repro.cache.config.CacheConfig`, a policy can be
    installed *ambiently* (:func:`replicating`) so scenario builders
    fill unset knobs from it and the sweep-result cache partitions on
    :func:`active_replication_fingerprint`.
    """

    k: int = 1
    cancel: str = "lazy"
    hedge_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"replication factor k must be >= 1, got {self.k}")
        if self.cancel not in CANCEL_MODES:
            raise ValueError(
                f"cancel must be one of {CANCEL_MODES}, got {self.cancel!r}"
            )
        if self.hedge_us is not None and self.hedge_us < 0:
            raise ValueError(f"hedge_us must be >= 0, got {self.hedge_us}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": int(self.k),
            "cancel": self.cancel,
            "hedge_us": None if self.hedge_us is None else float(self.hedge_us),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ReplicationPolicy":
        hedge = d.get("hedge_us")
        return cls(
            k=int(d.get("k", 1)),
            cancel=d.get("cancel", "lazy"),
            hedge_us=None if hedge is None else float(hedge),
        )

    def fingerprint(self) -> str:
        """Short content hash of the canonical form (cache-key field)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# -- ambient installation (mirrors repro.cache.config) -------------------------

_active_policy: Optional[ReplicationPolicy] = None


def active_replication_policy() -> Optional[ReplicationPolicy]:
    """The ambiently installed replication policy, or None."""
    return _active_policy


def active_replication_fingerprint() -> Optional[str]:
    """Fingerprint of the ambient policy, or None when none is
    installed — the value the sweep-result cache keys on."""
    if _active_policy is None:
        return None
    return _active_policy.fingerprint()


def set_active_replication_policy(
    policy: Optional[ReplicationPolicy],
) -> Optional[ReplicationPolicy]:
    """Install *policy* ambiently; returns the previous one."""
    global _active_policy
    previous = _active_policy
    _active_policy = policy
    return previous


@contextmanager
def replicating(policy: Optional[ReplicationPolicy]):
    """Ambiently install *policy* for the duration of the block."""
    previous = set_active_replication_policy(policy)
    try:
        yield policy
    finally:
        set_active_replication_policy(previous)


class WriteScheduler:
    """Base: tracks unacknowledged buffers per consumer copy.

    Subclasses implement :meth:`_pick`, returning the index of an
    *eligible* consumer (one with a free slot) or ``None`` if a policy
    constraint forces waiting even though some consumer has room (RR's
    head-of-line rule).
    """

    policy_name = "base"

    def __init__(
        self,
        sim: Simulator,
        n_consumers: int,
        max_outstanding: int = DEFAULT_MAX_OUTSTANDING,
    ) -> None:
        if n_consumers < 1:
            raise DataCutterError("scheduler needs at least one consumer")
        if max_outstanding < 1:
            raise DataCutterError("max_outstanding must be >= 1")
        self.sim = sim
        self.n_consumers = n_consumers
        self.max_outstanding = max_outstanding
        self.unacked: List[int] = [0] * n_consumers
        self.sent_counts: List[int] = [0] * n_consumers
        self.acked_counts: List[int] = [0] * n_consumers
        #: Per-consumer timestamp of the most recent send (experiments
        #: derive reaction times from these).
        self.last_send_at: List[float] = [0.0] * n_consumers
        self.last_ack_at: List[float] = [0.0] * n_consumers
        self.ack_delay: List[Tally] = [Tally(f"ack_delay[{i}]") for i in range(n_consumers)]
        #: Copies currently written off by graceful degradation (see
        #: repro.faults): dead copies never receive new buffers.
        self.dead: List[bool] = [False] * n_consumers
        #: Buffers written off by mark_dead(drop_outstanding=True).
        self.lost_counts: List[int] = [0] * n_consumers
        #: acquire_k calls that returned fewer than the k asked for
        #: (not enough distinct live copies): replication degrades,
        #: never raises.
        self.replication_clamped = 0
        #: Slots reserved by acquire()/acquire_k() and released unsent
        #: via cancel_reservation() (hedges decided before dispatch).
        self.reservations_cancelled = 0
        # Liveness as a counter so the all-dead check in acquire() is
        # O(1) instead of an O(n_consumers) scan per buffer.
        self._n_dead = 0
        self._waiters: List[Event] = []

    # -- acquisition -------------------------------------------------------------------

    def acquire(self) -> Generator[Event, Any, int]:
        """Block until the policy can place a buffer; returns the
        consumer index with its slot reserved."""
        while True:
            if self._n_dead == self.n_consumers:
                raise DataCutterError(
                    "all consumer copies are dead; cannot place buffer"
                )
            idx = self._pick()
            if idx is not None:
                self.unacked[idx] += 1
                self.sent_counts[idx] += 1
                self.last_send_at[idx] = self.sim.now
                self._on_slots_changed(idx)
                return idx
            waiter = Event(self.sim)
            self._waiters.append(waiter)
            yield waiter

    def acquire_k(
        self, k: int, exclude: Iterable[int] = ()
    ) -> Generator[Event, Any, List[int]]:
        """Reserve slots on *k* **distinct** live copies; returns their
        indexes in pick order (least-loaded first under DD).

        The replicated-dispatch primitive (:class:`ReplicationPolicy`):
        each returned index holds one reserved slot, exactly as after
        :meth:`acquire`.  Copies in *exclude* — typically the replicas a
        unit of work already has — are never picked, so a host holding
        one replica of a unit is never handed a second one (and the DD
        bucket index never double-counts it).

        When fewer than *k* distinct live copies exist the call
        *degrades*: it returns what it could reserve (possibly an empty
        list when *exclude* covers every live copy) and counts one
        ``replication_clamped``.  It blocks — like :meth:`acquire` —
        only while eligible copies exist but all their slots are in
        use.  Raises only when every copy is dead.
        """
        if k < 1:
            raise DataCutterError(f"acquire_k needs k >= 1, got {k}")
        picked: List[int] = []
        barred: Set[int] = {
            i for i in exclude if 0 <= i < self.n_consumers
        }
        while True:
            live = self.n_consumers - self._n_dead
            if live == 0 and not picked:
                raise DataCutterError(
                    "all consumer copies are dead; cannot place buffer"
                )
            barred_live = sum(1 for i in barred if not self.dead[i])
            target = min(k, len(picked) + max(0, live - barred_live))
            if len(picked) >= target:
                if len(picked) < k:
                    self.replication_clamped += 1
                return picked
            idx = self._pick_excluding(barred)
            if idx is not None:
                self.unacked[idx] += 1
                self.sent_counts[idx] += 1
                self.last_send_at[idx] = self.sim.now
                self._on_slots_changed(idx)
                picked.append(idx)
                barred.add(idx)
                continue
            waiter = Event(self.sim)
            self._waiters.append(waiter)
            yield waiter

    def cancel_reservation(self, idx: int) -> None:
        """Release a slot reserved by :meth:`acquire`/:meth:`acquire_k`
        on which nothing was (or will be) sent — a hedge replica whose
        unit was decided before its dispatch fired.  The send is
        uncounted and no ack-delay sample is recorded, so scheduler
        statistics only ever describe buffers that hit the wire."""
        if not 0 <= idx < self.n_consumers:
            raise DataCutterError(f"cancel_reservation on unknown consumer {idx}")
        if self.unacked[idx] > 0:
            self.unacked[idx] -= 1
        elif self.lost_counts[idx] > 0:
            # The slot was already written off by
            # mark_dead(drop_outstanding=True); un-write it off.
            self.lost_counts[idx] -= 1
        else:
            raise DataCutterError(
                f"consumer {idx} has no reservation to cancel"
            )
        if self.sent_counts[idx] > 0:
            self.sent_counts[idx] -= 1
        self.reservations_cancelled += 1
        self._on_slots_changed(idx)
        self._wake()

    def on_ack(self, idx: int) -> None:
        """A consumer acknowledged one buffer (it started processing)."""
        if not 0 <= idx < self.n_consumers:
            raise DataCutterError(f"ack from unknown consumer {idx}")
        if self.unacked[idx] <= 0:
            raise DataCutterError(f"consumer {idx} over-acknowledged")
        self.unacked[idx] -= 1
        self.acked_counts[idx] += 1
        self.last_ack_at[idx] = self.sim.now
        self.ack_delay[idx].record(self.sim.now - self.last_send_at[idx])
        self._on_slots_changed(idx)
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            w.succeed()

    # -- graceful degradation (see repro.faults) ------------------------------

    def mark_dead(self, idx: int, drop_outstanding: bool = False) -> None:
        """Stop routing buffers to copy *idx* (its host crashed).

        By default in-flight (unacknowledged) buffers keep their slots
        — they complete when the host restarts and replays its backlog.
        With *drop_outstanding* they are written off into
        ``lost_counts`` and their slots freed (a restarted filter that
        will not resume old work).  Waiters are woken either way so the
        policy can re-route pending sends around the dead copy.
        """
        if not 0 <= idx < self.n_consumers:
            raise DataCutterError(f"mark_dead on unknown consumer {idx}")
        if not self.dead[idx]:
            self.dead[idx] = True
            self._n_dead += 1
        if drop_outstanding and self.unacked[idx]:
            self.lost_counts[idx] += self.unacked[idx]
            self.unacked[idx] = 0
        self._on_slots_changed(idx)
        self._wake()

    def mark_alive(self, idx: int) -> None:
        """Copy *idx* is back (host restart): resume routing to it."""
        if not 0 <= idx < self.n_consumers:
            raise DataCutterError(f"mark_alive on unknown consumer {idx}")
        if self.dead[idx]:
            self.dead[idx] = False
            self._n_dead -= 1
        self._on_slots_changed(idx)
        self._wake()

    # -- policy ---------------------------------------------------------------------------

    def _pick(self) -> Optional[int]:
        raise NotImplementedError

    def _pick_excluding(self, barred: Set[int]) -> Optional[int]:
        """An eligible copy outside *barred*, or ``None`` to wait.

        Replica picks are demand-driven whatever the stream's base
        policy: the reference implementation scans for the minimum
        unacknowledged count (lowest index on ties).
        :class:`DemandDrivenScheduler` overrides it with its bucket
        index so the pick stays O(log n) and rotation-fair.
        """
        best: Optional[int] = None
        for i in range(self.n_consumers):
            if i in barred or not self._has_room(i):
                continue
            if best is None or self.unacked[i] < self.unacked[best]:
                best = i
        return best

    def _on_slots_changed(self, idx: int) -> None:
        """Hook: copy *idx*'s eligibility or unacked count changed.

        Called after every mutation of ``unacked``/``dead`` so policies
        that keep an index over the slot state (DD's unacked buckets)
        can maintain it incrementally instead of rescanning.
        """

    def _has_room(self, idx: int) -> bool:
        return not self.dead[idx] and self.unacked[idx] < self.max_outstanding

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} unacked={self.unacked}>"


class RoundRobinScheduler(WriteScheduler):
    """Strict rotation; waits (head-of-line) for the next copy's slot."""

    policy_name = "rr"

    def __init__(self, sim: Simulator, n_consumers: int, **kw) -> None:
        super().__init__(sim, n_consumers, **kw)
        self._next = 0

    def _pick(self) -> Optional[int]:
        # Dead copies drop out of the rotation entirely (degradation);
        # the head-of-line rule applies only to the next *live* copy.
        while self.dead[self._next]:
            self._next = (self._next + 1) % self.n_consumers
        if self._has_room(self._next):
            idx = self._next
            self._next = (self._next + 1) % self.n_consumers
            return idx
        return None  # wait for *this* consumer, even if others are free


class DemandDrivenScheduler(WriteScheduler):
    """Min-unacknowledged-buffers choice (paper's DD mechanism).

    The choice is indexed: eligible copies live in sorted per-count
    buckets (``_buckets[c]`` = live copies with ``unacked == c`` and a
    free slot), so picking the minimum-unacked copy is a bisect in the
    lowest non-empty bucket — O(log n) per buffer instead of the
    obvious O(n) scan — while reproducing the scan's decisions exactly:
    the minimum unacked count wins, ties broken by the first copy at or
    after ``_rotation`` in index order, wrapping.
    """

    policy_name = "dd"

    def __init__(self, sim: Simulator, n_consumers: int, **kw) -> None:
        super().__init__(sim, n_consumers, **kw)
        self._rotation = 0  # tie-break fairness
        # _buckets[c] is sorted; _where[i] is copy i's bucket, or None
        # when it is ineligible (dead, or all slots in use).
        self._buckets: List[List[int]] = [[] for _ in range(self.max_outstanding)]
        self._buckets[0] = list(range(n_consumers))
        self._where: List[Optional[int]] = [0] * n_consumers

    def _on_slots_changed(self, idx: int) -> None:
        new = self.unacked[idx] if self._has_room(idx) else None
        old = self._where[idx]
        if new == old:
            return
        if old is not None:
            bucket = self._buckets[old]
            del bucket[bisect_left(bucket, idx)]
        if new is not None:
            insort(self._buckets[new], idx)
        self._where[idx] = new

    def _pick(self) -> Optional[int]:
        for bucket in self._buckets:
            if bucket:
                pos = bisect_left(bucket, self._rotation)
                idx = bucket[pos] if pos < len(bucket) else bucket[0]
                self._rotation = (idx + 1) % self.n_consumers
                return idx
        return None

    def _pick_excluding(self, barred: Set[int]) -> Optional[int]:
        # Same bucket walk as _pick, skipping barred copies: a bucket
        # consisting entirely of copies that already hold a replica of
        # this unit falls through to the next count — the index never
        # double-counts a copy toward one unit's replica set.
        for bucket in self._buckets:
            n = len(bucket)
            if not n:
                continue
            pos = bisect_left(bucket, self._rotation)
            for off in range(n):
                idx = bucket[(pos + off) % n]
                if idx not in barred:
                    self._rotation = (idx + 1) % self.n_consumers
                    return idx
        return None


_POLICIES = {
    "rr": RoundRobinScheduler,
    "dd": DemandDrivenScheduler,
}


def make_scheduler(
    policy: str,
    sim: Simulator,
    n_consumers: int,
    max_outstanding: int = DEFAULT_MAX_OUTSTANDING,
) -> WriteScheduler:
    """Factory: ``"rr"`` or ``"dd"``."""
    try:
        cls = _POLICIES[policy]
    except KeyError:
        raise DataCutterError(
            f"unknown scheduling policy {policy!r}; have {sorted(_POLICIES)}"
        ) from None
    return cls(sim, n_consumers, max_outstanding=max_outstanding)


class AdmissionQueue:
    """Bounded drop-tail queue in front of a filter (admission control).

    The open-loop serving scenario (repro.apps.serve) offers arrivals
    at a rate the pipeline does not control.  Unlike
    :class:`repro.sim.resources.Store`, whose ``put`` always succeeds
    and whose backlog can grow without bound, an admission queue has a
    fixed *capacity*: :meth:`offer` either enqueues the item or refuses
    it on the spot, and every refusal is **counted** in ``dropped`` —
    overload shows up as a measured drop rate, never as silent loss or
    an ever-growing heap.

    Consumers run ``item = yield from queue.get()`` and treat ``None``
    as end-of-stream: after :meth:`close`, queued items still drain in
    FIFO order and only then does ``get`` return ``None``, so a closed
    queue quiesces the simulation without losing admitted work.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "admission") -> None:
        if capacity < 1:
            raise DataCutterError("admission queue capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._waiters: List[Event] = []
        self._closed = False
        #: Items accepted by :meth:`offer`.
        self.admitted = 0
        #: Items refused by :meth:`offer` (queue full or closed).
        self.dropped = 0
        #: Maximum queue depth observed.
        self.high_water = 0

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def offer(self, item: Any) -> bool:
        """Try to enqueue *item*; returns False (and counts a drop)
        when the queue is full or closed.  Never blocks the caller —
        that is what makes the generator open-loop."""
        if self._closed or len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.admitted += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        self._wake()
        return True

    def get(self) -> Generator[Event, Any, Any]:
        """Generator: next item in FIFO order, or ``None`` once the
        queue is closed and drained."""
        while True:
            if self._items:
                return self._items.popleft()
            if self._closed:
                return None
            waiter = Event(self.sim)
            self._waiters.append(waiter)
            yield waiter

    def close(self) -> None:
        """No further admissions; wake consumers so they drain and
        return.  Idempotent."""
        self._closed = True
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            w.succeed()

    def stats(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "dropped": self.dropped,
            "high_water": self.high_water,
            "depth": len(self._items),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<AdmissionQueue {self.name!r} depth={len(self._items)}/"
                f"{self.capacity} admitted={self.admitted} dropped={self.dropped}>")
