"""Buffer scheduling across transparent copies (paper Section 4.1).

When a producer filter writes to a logical stream whose consumer has
transparent copies, a *write scheduler* picks the copy each buffer goes
to.  DataCutter supports:

* **Round-Robin (RR)** — strict rotation.  With bounded outstanding
  buffers per consumer, a slow node causes head-of-line blocking: the
  rotation *must* wait for the slow copy's slot, which is exactly the
  pathology Figure 10 measures.
* **Demand-Driven (DD)** — "a producer filter chooses the consumer
  filter with the minimum number of unacknowledged buffers".  Consumers
  acknowledge a buffer when they start processing it, so fast copies
  drain their slots quicker and attract more work (Figure 11).

Both schedulers bound outstanding (unacknowledged) buffers per consumer
at ``max_outstanding`` (default 2: one in processing + one in flight —
the classic double-buffering depth for pipelining).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.errors import DataCutterError
from repro.sim import Event, Simulator
from repro.sim.monitor import Tally

__all__ = ["WriteScheduler", "RoundRobinScheduler", "DemandDrivenScheduler", "make_scheduler"]

DEFAULT_MAX_OUTSTANDING = 2


class WriteScheduler:
    """Base: tracks unacknowledged buffers per consumer copy.

    Subclasses implement :meth:`_pick`, returning the index of an
    *eligible* consumer (one with a free slot) or ``None`` if a policy
    constraint forces waiting even though some consumer has room (RR's
    head-of-line rule).
    """

    policy_name = "base"

    def __init__(
        self,
        sim: Simulator,
        n_consumers: int,
        max_outstanding: int = DEFAULT_MAX_OUTSTANDING,
    ) -> None:
        if n_consumers < 1:
            raise DataCutterError("scheduler needs at least one consumer")
        if max_outstanding < 1:
            raise DataCutterError("max_outstanding must be >= 1")
        self.sim = sim
        self.n_consumers = n_consumers
        self.max_outstanding = max_outstanding
        self.unacked: List[int] = [0] * n_consumers
        self.sent_counts: List[int] = [0] * n_consumers
        self.acked_counts: List[int] = [0] * n_consumers
        #: Per-consumer timestamp of the most recent send (experiments
        #: derive reaction times from these).
        self.last_send_at: List[float] = [0.0] * n_consumers
        self.last_ack_at: List[float] = [0.0] * n_consumers
        self.ack_delay: List[Tally] = [Tally(f"ack_delay[{i}]") for i in range(n_consumers)]
        #: Copies currently written off by graceful degradation (see
        #: repro.faults): dead copies never receive new buffers.
        self.dead: List[bool] = [False] * n_consumers
        #: Buffers written off by mark_dead(drop_outstanding=True).
        self.lost_counts: List[int] = [0] * n_consumers
        self._waiters: List[Event] = []

    # -- acquisition -------------------------------------------------------------------

    def acquire(self) -> Generator[Event, Any, int]:
        """Block until the policy can place a buffer; returns the
        consumer index with its slot reserved."""
        while True:
            if all(self.dead):
                raise DataCutterError(
                    "all consumer copies are dead; cannot place buffer"
                )
            idx = self._pick()
            if idx is not None:
                self.unacked[idx] += 1
                self.sent_counts[idx] += 1
                self.last_send_at[idx] = self.sim.now
                return idx
            waiter = Event(self.sim)
            self._waiters.append(waiter)
            yield waiter

    def on_ack(self, idx: int) -> None:
        """A consumer acknowledged one buffer (it started processing)."""
        if not 0 <= idx < self.n_consumers:
            raise DataCutterError(f"ack from unknown consumer {idx}")
        if self.unacked[idx] <= 0:
            raise DataCutterError(f"consumer {idx} over-acknowledged")
        self.unacked[idx] -= 1
        self.acked_counts[idx] += 1
        self.last_ack_at[idx] = self.sim.now
        self.ack_delay[idx].record(self.sim.now - self.last_send_at[idx])
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            w.succeed()

    # -- graceful degradation (see repro.faults) ------------------------------

    def mark_dead(self, idx: int, drop_outstanding: bool = False) -> None:
        """Stop routing buffers to copy *idx* (its host crashed).

        By default in-flight (unacknowledged) buffers keep their slots
        — they complete when the host restarts and replays its backlog.
        With *drop_outstanding* they are written off into
        ``lost_counts`` and their slots freed (a restarted filter that
        will not resume old work).  Waiters are woken either way so the
        policy can re-route pending sends around the dead copy.
        """
        if not 0 <= idx < self.n_consumers:
            raise DataCutterError(f"mark_dead on unknown consumer {idx}")
        self.dead[idx] = True
        if drop_outstanding and self.unacked[idx]:
            self.lost_counts[idx] += self.unacked[idx]
            self.unacked[idx] = 0
        self._wake()

    def mark_alive(self, idx: int) -> None:
        """Copy *idx* is back (host restart): resume routing to it."""
        if not 0 <= idx < self.n_consumers:
            raise DataCutterError(f"mark_alive on unknown consumer {idx}")
        self.dead[idx] = False
        self._wake()

    # -- policy ---------------------------------------------------------------------------

    def _pick(self) -> Optional[int]:
        raise NotImplementedError

    def _has_room(self, idx: int) -> bool:
        return not self.dead[idx] and self.unacked[idx] < self.max_outstanding

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} unacked={self.unacked}>"


class RoundRobinScheduler(WriteScheduler):
    """Strict rotation; waits (head-of-line) for the next copy's slot."""

    policy_name = "rr"

    def __init__(self, sim: Simulator, n_consumers: int, **kw) -> None:
        super().__init__(sim, n_consumers, **kw)
        self._next = 0

    def _pick(self) -> Optional[int]:
        # Dead copies drop out of the rotation entirely (degradation);
        # the head-of-line rule applies only to the next *live* copy.
        while self.dead[self._next]:
            self._next = (self._next + 1) % self.n_consumers
        if self._has_room(self._next):
            idx = self._next
            self._next = (self._next + 1) % self.n_consumers
            return idx
        return None  # wait for *this* consumer, even if others are free


class DemandDrivenScheduler(WriteScheduler):
    """Min-unacknowledged-buffers choice (paper's DD mechanism)."""

    policy_name = "dd"

    def __init__(self, sim: Simulator, n_consumers: int, **kw) -> None:
        super().__init__(sim, n_consumers, **kw)
        self._rotation = 0  # tie-break fairness

    def _pick(self) -> Optional[int]:
        best = None
        best_count = None
        for off in range(self.n_consumers):
            idx = (self._rotation + off) % self.n_consumers
            if not self._has_room(idx):
                continue
            if best_count is None or self.unacked[idx] < best_count:
                best = idx
                best_count = self.unacked[idx]
        if best is not None:
            self._rotation = (best + 1) % self.n_consumers
        return best


_POLICIES = {
    "rr": RoundRobinScheduler,
    "dd": DemandDrivenScheduler,
}


def make_scheduler(
    policy: str,
    sim: Simulator,
    n_consumers: int,
    max_outstanding: int = DEFAULT_MAX_OUTSTANDING,
) -> WriteScheduler:
    """Factory: ``"rr"`` or ``"dd"``."""
    try:
        cls = _POLICIES[policy]
    except KeyError:
        raise DataCutterError(
            f"unknown scheduling policy {policy!r}; have {sorted(_POLICIES)}"
        ) from None
    return cls(sim, n_consumers, max_outstanding=max_outstanding)
