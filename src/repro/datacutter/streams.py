"""Physical realization of logical streams.

The runtime keeps "the illusion of a single logical point-to-point
stream" (Section 4.1) over a mesh of socket connections between every
producer copy and every consumer copy:

* an :class:`OutputPort` (one per producer copy per stream) holds the
  sockets to all consumer copies and a write scheduler (RR or DD) that
  picks a destination per buffer;
* an :class:`InputPort` (one per consumer copy per stream) merges
  buffers arriving on all inbound connections and counts end-of-work
  markers — the read side sees one stream that simply ends;
* acknowledgments flow back on the same sockets: ``read()`` acks the
  buffer to its producer just before handing it to the filter ("an
  acknowledgment message ... to indicate that the buffer is being
  processed").
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.datacutter.buffers import (
    ACK_BYTES,
    BUFFER_HEADER_BYTES,
    DataBuffer,
    EOW,
    EOW_BYTES,
)
from repro.datacutter.scheduling import WriteScheduler
from repro.errors import StreamClosedError
from repro.sim import Event, Simulator, Store
from repro.sockets.api import BaseSocket

__all__ = ["OutputPort", "InputPort"]


class OutputPort:
    """Producer-copy end of a logical stream."""

    def __init__(
        self,
        sim: Simulator,
        stream_name: str,
        scheduler: WriteScheduler,
    ) -> None:
        self.sim = sim
        self.stream_name = stream_name
        self.scheduler = scheduler
        #: Socket per consumer copy, indexed by copy number; filled by
        #: the runtime during connection setup.
        self.connections: List[Optional[BaseSocket]] = [None] * scheduler.n_consumers
        self.buffers_written = 0
        self.bytes_written = 0
        #: Retraction guard (replicated dispatch, docs/TAILS.md): when
        #: set, ``fn(uow_id) -> bool`` is consulted before every
        #: transmit and a True verdict suppresses the buffer — a
        #: retracted unit never emits downstream, whichever copy tries.
        self.retraction: Optional[Callable[[int], bool]] = None
        #: Buffers suppressed by the retraction guard.
        self.buffers_retracted = 0
        self._closed = False

    def attach(self, consumer_index: int, sock: BaseSocket) -> None:
        self.connections[consumer_index] = sock
        # Acknowledgments arrive as control datagrams on the reverse
        # path of the same connection.
        sock.on_control(
            "ack", lambda kind, payload, size: self.scheduler.on_ack(consumer_index)
        )

    def write(self, buffer: DataBuffer) -> Generator[Event, Any, Optional[int]]:
        """Schedule and transmit one buffer; returns the consumer index
        (or ``None`` when the retraction guard suppressed it)."""
        if self._closed:
            raise StreamClosedError(f"write on closed stream {self.stream_name!r}")
        if self.retraction is not None and self.retraction(buffer.uow_id):
            self.buffers_retracted += 1
            return None
        idx = yield from self.scheduler.acquire()
        yield from self._transmit(idx, buffer)
        return idx

    def write_to(self, idx: int, buffer: DataBuffer) -> Generator[Event, Any, bool]:
        """Transmit one buffer to consumer copy *idx*, whose slot the
        caller already reserved (``scheduler.acquire_k`` — replicated
        dispatch).  A buffer the retraction guard suppresses releases
        the reservation instead of transmitting; returns whether the
        buffer actually went out."""
        if self._closed:
            raise StreamClosedError(f"write on closed stream {self.stream_name!r}")
        if self.retraction is not None and self.retraction(buffer.uow_id):
            self.scheduler.cancel_reservation(idx)
            self.buffers_retracted += 1
            return False
        yield from self._transmit(idx, buffer)
        return True

    def _transmit(self, idx: int, buffer: DataBuffer) -> Generator[Event, Any, None]:
        sock = self.connections[idx]
        assert sock is not None, "stream used before connection setup"
        yield from sock.send_message(
            buffer.size + BUFFER_HEADER_BYTES, payload=buffer, kind="data"
        )
        self.buffers_written += 1
        self.bytes_written += buffer.size

    def send_eow(self, uow_id: int) -> Generator[Event, Any, None]:
        """Broadcast the end-of-work marker to every consumer copy."""
        for sock in self.connections:
            assert sock is not None
            yield from sock.send_message(
                EOW_BYTES, payload=EOW(uow_id), kind="eow"
            )

    def close(self) -> None:
        self._closed = True
        for sock in self.connections:
            if sock is not None:
                sock.close()


class InputPort:
    """Consumer-copy end of a logical stream (merged view)."""

    def __init__(self, sim: Simulator, stream_name: str, n_producers: int) -> None:
        self.sim = sim
        self.stream_name = stream_name
        self.n_producers = n_producers
        self._merged: Store = Store(sim, name=f"{stream_name}.merge")
        self._eow_seen = 0
        self.buffers_read = 0
        self.bytes_read = 0

    def attach(self, producer_index: int, sock: BaseSocket) -> None:
        self.sim.process(
            self._reader(producer_index, sock),
            name=f"{self.stream_name}.rd[{producer_index}]",
        )

    def _reader(self, idx: int, sock: BaseSocket):
        from repro.errors import SocketClosedError

        while True:
            try:
                msg = yield from sock.recv_message()
            except SocketClosedError:
                return
            if msg.kind == "data":
                ev = self._merged.put(("data", msg.payload, sock))
                ev.defused = True
            elif msg.kind == "eow":
                ev = self._merged.put(("eow", msg.payload, sock))
                ev.defused = True
            # acks never arrive here (they flow producer-ward)

    def read(self) -> Generator[Event, Any, Optional[DataBuffer]]:
        """Next buffer, or ``None`` once every producer copy sent EOW.

        Acknowledges the returned buffer to its producer first — the
        ack is the "consumer started processing" signal the
        demand-driven scheduler feeds on.
        """
        while True:
            kind, payload, sock = yield self._merged.get()
            if kind == "eow":
                self._eow_seen += 1
                if self._eow_seen == self.n_producers:
                    self._eow_seen = 0  # re-arm for the next UOW
                    return None
                continue
            buf: DataBuffer = payload
            yield from sock.send_control(ACK_BYTES, kind="ack")
            self.buffers_read += 1
            self.bytes_read += buf.size
            return buf

    @property
    def backlog(self) -> int:
        """Buffers (and markers) received but not yet read."""
        return self._merged.size
