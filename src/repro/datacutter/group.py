"""Filter groups: the application's processing structure.

A :class:`FilterGroup` declares filters (with transparent-copy counts),
the logical streams connecting them, and optionally a placement of
copies onto hosts.  Validation catches malformed graphs before any
simulation runs: unknown endpoints, cycles (streams form an acyclic
data flow, Section 2), filters with no role, duplicate names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import FilterGraphError, PlacementError

__all__ = ["FilterSpec", "StreamSpec", "Placement", "FilterGroup"]


@dataclass
class FilterSpec:
    """One declared filter: a factory plus its transparent-copy count."""

    name: str
    factory: Callable[[], "object"]
    copies: int = 1
    #: Optional scheduling policy override for this filter's *output*
    #: streams ("rr" or "dd"); None inherits the group default.
    policy: Optional[str] = None

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise FilterGraphError(f"filter {self.name!r} needs >= 1 copy")


@dataclass
class StreamSpec:
    """A logical stream: uni-directional producer -> consumer."""

    name: str
    producer: str
    consumer: str


@dataclass
class Placement:
    """Maps (filter, copy index) -> host name."""

    assignments: Dict[Tuple[str, int], str] = field(default_factory=dict)

    def host_for(self, filter_name: str, copy: int) -> str:
        try:
            return self.assignments[(filter_name, copy)]
        except KeyError:
            raise PlacementError(
                f"no host assigned for {filter_name!r} copy {copy}"
            ) from None


class FilterGroup:
    """Builder + validator for one application's filter graph.

    Example (the paper's visualization pipeline)::

        group = FilterGroup("vizserver", default_policy="dd")
        group.add_filter("reader", ReaderFilter, copies=3)
        group.add_filter("clip", ClipFilter, copies=3)
        group.add_filter("subsample", SubsampleFilter, copies=3)
        group.add_filter("viz", VizFilter)
        group.connect("raw", "reader", "clip")
        group.connect("clipped", "clip", "subsample")
        group.connect("pixels", "subsample", "viz")
    """

    def __init__(self, name: str, default_policy: str = "dd") -> None:
        self.name = name
        self.default_policy = default_policy
        self.filters: Dict[str, FilterSpec] = {}
        self.streams: List[StreamSpec] = []

    # -- construction ----------------------------------------------------------------

    def add_filter(
        self,
        name: str,
        factory: Callable[[], "object"],
        copies: int = 1,
        policy: Optional[str] = None,
    ) -> FilterSpec:
        """Declare a filter; *factory* is called once per copy."""
        if name in self.filters:
            raise FilterGraphError(f"duplicate filter {name!r}")
        spec = FilterSpec(name=name, factory=factory, copies=copies, policy=policy)
        self.filters[name] = spec
        return spec

    def connect(self, stream_name: str, producer: str, consumer: str) -> StreamSpec:
        """Declare a logical stream from *producer* to *consumer*."""
        for endpoint in (producer, consumer):
            if endpoint not in self.filters:
                raise FilterGraphError(
                    f"stream {stream_name!r} references unknown filter "
                    f"{endpoint!r}"
                )
        if any(s.name == stream_name for s in self.streams):
            raise FilterGraphError(f"duplicate stream {stream_name!r}")
        spec = StreamSpec(stream_name, producer, consumer)
        self.streams.append(spec)
        return spec

    # -- queries ----------------------------------------------------------------------

    def inputs_of(self, filter_name: str) -> List[StreamSpec]:
        """Streams whose consumer is *filter_name*."""
        return [s for s in self.streams if s.consumer == filter_name]

    def outputs_of(self, filter_name: str) -> List[StreamSpec]:
        """Streams whose producer is *filter_name*."""
        return [s for s in self.streams if s.producer == filter_name]

    def sources(self) -> List[str]:
        """Filters with no input streams (data producers)."""
        return [f for f in self.filters if not self.inputs_of(f)]

    def sinks(self) -> List[str]:
        """Filters with no output streams."""
        return [f for f in self.filters if not self.outputs_of(f)]

    def policy_for(self, filter_name: str) -> str:
        spec = self.filters[filter_name]
        return spec.policy or self.default_policy

    # -- validation ----------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`FilterGraphError` on structural problems."""
        if not self.filters:
            raise FilterGraphError("empty filter group")
        graph = nx.DiGraph()
        graph.add_nodes_from(self.filters)
        for s in self.streams:
            graph.add_edge(s.producer, s.consumer, name=s.name)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise FilterGraphError(f"filter graph has a cycle: {cycle}")
        if len(self.filters) > 1:
            isolated = [n for n in graph.nodes if graph.degree(n) == 0]
            if isolated:
                raise FilterGraphError(
                    f"filters not connected to any stream: {isolated}"
                )
        if not self.sources():
            raise FilterGraphError("filter group has no source filter")

    # -- placement -------------------------------------------------------------------------

    def place_round_robin(self, hosts: Sequence[str]) -> Placement:
        """Assign copies to *hosts* in declaration order, round-robin.

        The paper places each copy on a different node; give this as
        many hosts as there are copies for that effect.
        """
        if not hosts:
            raise PlacementError("no hosts to place on")
        placement = Placement()
        i = 0
        for spec in self.filters.values():
            for copy in range(spec.copies):
                placement.assignments[(spec.name, copy)] = hosts[i % len(hosts)]
                i += 1
        return placement

    def place(self, mapping: Dict[str, Sequence[str]]) -> Placement:
        """Explicit placement: filter name -> list of hosts (one per copy)."""
        placement = Placement()
        for spec in self.filters.values():
            try:
                host_list = mapping[spec.name]
            except KeyError:
                raise PlacementError(f"no hosts given for {spec.name!r}") from None
            if len(host_list) != spec.copies:
                raise PlacementError(
                    f"{spec.name!r} has {spec.copies} copies but "
                    f"{len(host_list)} hosts were given"
                )
            for copy, host in enumerate(host_list):
                placement.assignments[(spec.name, copy)] = host
        return placement

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FilterGroup {self.name!r} filters={list(self.filters)} "
            f"streams={[s.name for s in self.streams]}>"
        )
