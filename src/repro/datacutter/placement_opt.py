"""Placement planning for filter groups.

"Placement of components onto computational resources represents an
important degree of flexibility in optimizing application performance"
(paper Section 1, quoting the component-framework motivation).  This
module turns that flexibility into an algorithm: given a filter group,
candidate hosts, a transport cost model and per-filter compute rates,
it predicts each host's per-byte load and greedily assigns copies to
minimize the bottleneck.

Model
-----
For one byte flowing through a filter copy, its host pays

* ``host_recv_time`` per input stream byte (amortized per-chunk costs
  are ignored: this is a placement heuristic, not a simulator),
* ``host_send_time`` per output stream byte,
* the filter's compute seconds per byte (scaled by any static host
  slowdown).

Stream rates default to 1.0 (uniform relative flow) and can be given
per stream when the application shrinks or amplifies data between
stages.  The load a copy adds is its filter's per-byte cost times its
share (rate / copies) of each adjacent stream.

The planner is greedy in topological order with two tie-breakers that
encode DataCutter practice: copies of one filter spread across distinct
hosts first (they would otherwise serialize on one CPU), and producers
avoid their consumers' hosts when alternatives are no worse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.datacutter.group import FilterGroup, Placement
from repro.errors import PlacementError
from repro.net.model import ProtocolCostModel

__all__ = ["predict_host_loads", "plan_placement"]

#: Chunk size used to amortize per-message costs into per-byte costs.
_REFERENCE_CHUNK = 8 * 1024


def _per_byte_cost(model: ProtocolCostModel, direction: str) -> float:
    """Host cost per byte moved, at the reference chunk size."""
    if direction == "recv":
        return model.host_recv_time(_REFERENCE_CHUNK) / _REFERENCE_CHUNK
    return model.host_send_time(_REFERENCE_CHUNK) / _REFERENCE_CHUNK


def _copy_load(
    group: FilterGroup,
    filter_name: str,
    model: ProtocolCostModel,
    compute_ns: Dict[str, float],
    stream_rates: Dict[str, float],
) -> float:
    """Per-byte-second load one copy of *filter_name* puts on its host."""
    spec = group.filters[filter_name]
    load = 0.0
    for stream in group.inputs_of(filter_name):
        rate = stream_rates.get(stream.name, 1.0) / spec.copies
        load += rate * _per_byte_cost(model, "recv")
    for stream in group.outputs_of(filter_name):
        rate = stream_rates.get(stream.name, 1.0) / spec.copies
        load += rate * _per_byte_cost(model, "send")
    # Compute rides every input byte (sources compute over their output).
    inputs = group.inputs_of(filter_name)
    streams = inputs if inputs else group.outputs_of(filter_name)
    ns = compute_ns.get(filter_name, 0.0)
    for stream in streams:
        rate = stream_rates.get(stream.name, 1.0) / spec.copies
        load += rate * ns * 1e-9
    return load


def predict_host_loads(
    group: FilterGroup,
    placement: Placement,
    model: ProtocolCostModel,
    compute_ns: Optional[Dict[str, float]] = None,
    stream_rates: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """Per-host predicted load (seconds of host work per byte of flow)
    for an existing placement — the quantity the planner minimizes."""
    compute_ns = compute_ns or {}
    stream_rates = stream_rates or {}
    loads: Dict[str, float] = {}
    for (fname, copy), host in placement.assignments.items():
        loads[host] = loads.get(host, 0.0) + _copy_load(
            group, fname, model, compute_ns, stream_rates
        )
    return loads


def plan_placement(
    group: FilterGroup,
    hosts: Sequence[str],
    model: ProtocolCostModel,
    compute_ns: Optional[Dict[str, float]] = None,
    stream_rates: Optional[Dict[str, float]] = None,
) -> Placement:
    """Greedy bottleneck-minimizing placement of all copies onto *hosts*.

    Copies are assigned in topological filter order; each copy goes to
    the host with the smallest projected load, preferring hosts not yet
    carrying a copy of the same filter.  Raises
    :class:`~repro.errors.PlacementError` when any filter has more
    copies than there are hosts (copies must not co-locate with
    themselves: they would serialize on one CPU and stop being
    transparent performance-wise).
    """
    group.validate()
    if not hosts:
        raise PlacementError("no hosts to place on")
    compute_ns = compute_ns or {}
    stream_rates = stream_rates or {}

    graph = nx.DiGraph()
    graph.add_nodes_from(group.filters)
    for s in group.streams:
        graph.add_edge(s.producer, s.consumer)
    order = list(nx.topological_sort(graph))

    loads: Dict[str, float] = {h: 0.0 for h in hosts}
    placement = Placement()
    for fname in order:
        spec = group.filters[fname]
        if spec.copies > len(hosts):
            raise PlacementError(
                f"{fname!r} has {spec.copies} copies but only "
                f"{len(hosts)} hosts are available"
            )
        delta = _copy_load(group, fname, model, compute_ns, stream_rates)
        used_by_this_filter: set = set()
        for copy in range(spec.copies):
            candidates = [h for h in hosts if h not in used_by_this_filter]
            # Least-loaded first; stable order breaks ties by host name
            # order in the input sequence (deterministic).
            best = min(candidates, key=lambda h: loads[h])
            placement.assignments[(fname, copy)] = best
            loads[best] += delta
            used_by_this_filter.add(best)
    return placement
