"""Data buffers and end-of-work markers (the filter-stream currency).

A :class:`DataBuffer` is "an array of data elements transferred from one
filter to another" (paper Section 4.1).  The simulation carries sizes
and metadata, not bytes; ``meta`` is the place applications stash chunk
coordinates, query ids and timestamps.

``EOW`` is the special marker the runtime sends after the last buffer
of a unit of work (Figure 3a).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["DataBuffer", "EOW", "BUFFER_HEADER_BYTES", "EOW_BYTES", "ACK_BYTES"]

#: Stream-protocol header carried by every data buffer on the wire.
BUFFER_HEADER_BYTES = 32
#: Wire size of an end-of-work marker.
EOW_BYTES = 32
#: Wire size of a consumption acknowledgment (demand-driven protocol).
ACK_BYTES = 32

_buffer_ids = itertools.count(1)


@dataclass
class DataBuffer:
    """One unit of data flowing down a logical stream.

    Attributes
    ----------
    size:
        Payload bytes (drives all communication/computation costs).
    data:
        Optional real content (NumPy array in the examples; usually None
        in timing experiments).
    uow_id:
        The unit of work this buffer belongs to.
    meta:
        Application metadata (chunk index, query id, timestamps...).
    """

    size: int
    data: Any = None
    uow_id: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    buffer_id: int = field(default_factory=lambda: next(_buffer_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative buffer size {self.size}")

    def with_size(self, size: int, **meta: Any) -> "DataBuffer":
        """A derived buffer (same UOW) of a new size — the common shape
        of a filter transforming data as it flows through."""
        merged = dict(self.meta)
        merged.update(meta)
        return DataBuffer(size=size, data=self.data, uow_id=self.uow_id, meta=merged)


class EOW:
    """End-of-work marker (singleton-ish; identity is irrelevant)."""

    __slots__ = ("uow_id",)

    def __init__(self, uow_id: int) -> None:
        self.uow_id = uow_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"<EOW uow={self.uow_id}>"
