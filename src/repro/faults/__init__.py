"""Deterministic fault injection and resilience (see docs/RESILIENCE.md).

Quick tour::

    from repro.faults import FaultPlan, LinkFault, HostFault, injecting

    plan = FaultPlan(
        name="demo", seed=7,
        links={"clan.*.down": LinkFault(flap_windows=((0.01, 0.02),))},
        hosts={"worker01": HostFault(crash_at=0.01, restart_at=0.03)},
    )
    with injecting(plan):
        result = run_loadbalance(cfg)   # cluster built inside adopts it

The subsystem has two halves:

* **injection** — :class:`FaultPlan` (declarative, JSON round-trip,
  fingerprinted) installed by a
  :class:`~repro.faults.injector.FaultInjector` into link delivery,
  stack receive paths, and host compute (``repro.faults.plan`` /
  ``repro.faults.injector``);
* **resilience** — :class:`RetryPolicy` connect retry with exponential
  backoff + jitter and connect/recv timeouts in the transports and
  sockets, plus DataCutter's dead-host rescheduling and filter restart
  (``repro.faults.retry``, ``repro.transport.base``,
  ``repro.datacutter``).

``python -m repro faults list|describe`` exposes the named presets in
``repro.faults.presets``; the ``chaos`` bench suite measures Figure 8
and Figure 11 under two of them.
"""

from repro.faults.injector import FaultInjector, WindowedSlowdown
from repro.faults.plan import (
    FaultPlan,
    HostFault,
    LinkFault,
    active_fingerprint,
    active_plan,
    injecting,
    set_active_plan,
)
from repro.faults.presets import PRESETS, get_preset, preset_names
from repro.faults.retry import RetryPolicy

__all__ = [
    "FaultPlan",
    "LinkFault",
    "HostFault",
    "FaultInjector",
    "WindowedSlowdown",
    "RetryPolicy",
    "active_plan",
    "active_fingerprint",
    "set_active_plan",
    "injecting",
    "PRESETS",
    "get_preset",
    "preset_names",
]
