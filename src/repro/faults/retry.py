"""Retry with exponential backoff and deterministic jitter.

The resilience half of the fault subsystem: a :class:`RetryPolicy`
bounds each connection attempt with a timeout and spaces re-attempts
with exponentially growing delays.  Jitter — the fraction of each
delay randomized to de-synchronize competing retriers — draws from a
``random.Random(f"{seed}:{key}")`` stream keyed by the connection
(client host, server host, port), so a retry schedule is a pure
function of the policy and the connection: bit-identical across runs
and across executor workers.

Used by :meth:`repro.transport.base.StackBase._connect_endpoint`
(pass ``retry=RetryPolicy(...)`` to any stack built on it); on
exhaustion the stack raises :class:`repro.errors.RetryExhausted`
carrying the attempt count and the backoff schedule actually waited.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import FaultPlanError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Connect retry schedule: ``max_attempts`` tries, each bounded by
    ``attempt_timeout`` seconds, separated by
    ``base_delay * multiplier**i`` seconds (i = 0 for the first retry),
    each delay stretched by up to ``jitter`` of itself."""

    max_attempts: int = 4
    attempt_timeout: float = 2e-3
    base_delay: float = 200e-6
    multiplier: float = 2.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultPlanError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.attempt_timeout <= 0:
            raise FaultPlanError(
                f"attempt_timeout must be > 0, got {self.attempt_timeout}")
        if self.base_delay < 0 or self.multiplier < 1:
            raise FaultPlanError("base_delay >= 0 and multiplier >= 1 required")
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultPlanError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self, key: str = "") -> List[float]:
        """The ``max_attempts - 1`` backoff delays for connection *key*
        (deterministic: same policy + key → same schedule)."""
        rng = random.Random(f"{self.seed}:{key}") if self.jitter else None
        out = []
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            step = delay
            if rng is not None:
                step *= 1.0 + self.jitter * rng.random()
            out.append(step)
            delay *= self.multiplier
        return out
