"""Runtime fault injection: install a :class:`FaultPlan` into a cluster.

A :class:`FaultInjector` is built by
:class:`~repro.cluster.topology.Cluster` when a non-empty plan is
ambient (see :func:`repro.faults.plan.injecting`), and attaches fault
state as the topology grows:

* **links** — every :class:`~repro.cluster.link.LinkDirection` whose
  name matches a plan pattern gets a :class:`_LinkFaultState` consulted
  at delivery time: loss and corruption discard the frame (the model of
  a receive-side CRC drop — the wire time was already paid), reorder
  swaps adjacent deliveries, flap windows buffer deliveries and release
  them FIFO at the window end.  Unfaulted links keep ``faults = None``
  and pay one attribute check.
* **hosts** — a host with a crash window gets a
  :class:`_HostFaultState` its transport stacks consult on receive:
  while down, arriving items are *deferred* (the NIC queue outlives an
  OS blackout) and replayed in order at restart.  Slowdown windows wrap
  the host's heterogeneity model in :class:`WindowedSlowdown`.

Every probabilistic decision draws from a per-link
``random.Random(f"{seed}:{link}")`` stream — independent of scheduling
interleavings across links and of executor parallelism — so a plan +
seed fully determines the fault sequence (asserted by
``tests/test_faults_determinism.py``).

Trace points (the new ``faults`` layer): ``faults.drop``,
``faults.corrupt``, ``faults.reorder``, ``faults.flap``,
``faults.defer``, ``faults.crash``, ``faults.restart`` here;
``faults.retry`` from the transport connect path and
``faults.reschedule`` from DataCutter.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Tuple

from repro.faults.plan import FaultPlan, HostFault, LinkFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.cluster.link import LinkDirection, Port, Switch, Transmission

__all__ = ["FaultInjector", "WindowedSlowdown"]


class WindowedSlowdown:
    """Heterogeneity model composing transient slowdown windows over a
    base model: inside a ``(start, end, factor)`` window the base
    factor is multiplied by ``factor``.  Sampled per :meth:`Host.compute`
    call, i.e. per data block, like the paper's slow-node emulation."""

    def __init__(self, base: Any,
                 windows: Tuple[Tuple[float, float, float], ...]) -> None:
        self.base = base
        self.windows = tuple(windows)

    def factor(self, host: "Host") -> float:
        f = self.base.factor(host)
        now = host.sim.now
        for start, end, wf in self.windows:
            if start <= now < end:
                f *= wf
        return f

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WindowedSlowdown base={self.base!r} windows={self.windows}>"


class _LinkFaultState:
    """Per-link fault machinery, consulted by
    :class:`~repro.cluster.link.LinkDirection` at delivery time."""

    __slots__ = ("injector", "link", "cfg", "rng",
                 "_flap_held", "_reorder_held")

    def __init__(self, injector: "FaultInjector", link: "LinkDirection",
                 cfg: LinkFault) -> None:
        self.injector = injector
        self.link = link
        self.cfg = cfg
        self.rng = random.Random(f"{injector.plan.seed}:link:{link.name}")
        #: window end -> transmissions held until that end.
        self._flap_held: Dict[float, List["Transmission"]] = {}
        self._reorder_held: Any = None

    def deliver(self, tx: "Transmission") -> None:
        """Fault-filtered delivery; the caller guarantees the link has a
        delivery callback."""
        cfg = self.cfg
        link = self.link
        injector = self.injector
        tracer = injector.tracer
        if cfg.flap_windows:
            now = link.sim.now
            for start, end in cfg.flap_windows:
                if start <= now < end:
                    self._hold(end, tx)
                    return
        if cfg.loss_rate and self.rng.random() < cfg.loss_rate:
            injector.stats["dropped"] += 1
            if tracer.enabled:
                tracer.emit("faults.drop", link=link.name, size=tx.size,
                            dst=tx.dst, tag=tx.tag)
            return
        if cfg.corrupt_rate and self.rng.random() < cfg.corrupt_rate:
            # Corruption is modeled as a receive-side CRC discard: the
            # frame crossed the wire (time already charged) but never
            # reaches the demultiplexer.
            injector.stats["corrupted"] += 1
            if tracer.enabled:
                tracer.emit("faults.corrupt", link=link.name, size=tx.size,
                            dst=tx.dst, tag=tx.tag)
            return
        if cfg.reorder_rate:
            held = self._reorder_held
            if held is not None:
                # Deliver the newcomer first, then the held frame: one
                # adjacent swap per reorder decision.
                self._reorder_held = None
                link._deliver(tx)
                link._deliver(held)
                return
            if self.rng.random() < cfg.reorder_rate:
                self._reorder_held = tx
                injector.stats["reordered"] += 1
                if tracer.enabled:
                    tracer.emit("faults.reorder", link=link.name,
                                size=tx.size, dst=tx.dst, tag=tx.tag)
                return
        link._deliver(tx)

    def _hold(self, end: float, tx: "Transmission") -> None:
        held = self._flap_held.get(end)
        if held is None:
            self._flap_held[end] = held = []
            ev = self.link.sim.timeout(end - self.link.sim.now)
            ev.add_callback(lambda _e, end=end: self._release(end))
        held.append(tx)
        self.injector.stats["flapped"] += 1
        tracer = self.injector.tracer
        if tracer.enabled:
            tracer.emit("faults.flap", link=self.link.name, size=tx.size,
                        dst=tx.dst, until=end)

    def _release(self, end: float) -> None:
        for tx in self._flap_held.pop(end, ()):
            self.deliver(tx)  # re-filter: loss/reorder still apply


class _HostFaultState:
    """Crash-blackout state shared by every transport stack on one
    host.  Stacks check ``down`` on their receive enqueue (one
    attribute check via ``stack.faults``) and defer arrivals while the
    host is crashed; :meth:`replay` drains them in order at restart."""

    __slots__ = ("injector", "host", "down", "_deferred")

    def __init__(self, injector: "FaultInjector", host: "Host") -> None:
        self.injector = injector
        self.host = host
        self.down = False
        self._deferred: List[Tuple[Callable[[Any], None], Any]] = []

    def defer(self, replay: Callable[[Any], None], item: Any) -> None:
        self._deferred.append((replay, item))
        self.injector.stats["deferred"] += 1
        tracer = self.injector.tracer
        if tracer.enabled:
            tracer.emit("faults.defer", host=self.host.name,
                        item=type(item).__name__)

    def replay(self) -> None:
        deferred, self._deferred = self._deferred, []
        for replay, item in deferred:
            replay(item)


class FaultInjector:
    """Installs one plan into one cluster and owns its runtime state.

    Built by :class:`~repro.cluster.topology.Cluster` (which calls
    :meth:`attach_host` / :meth:`attach_port` as the topology grows) —
    drivers normally never construct one directly; they wrap the run in
    ``with injecting(plan):``.

    DataCutter (or any runtime) registers crash/restart listeners via
    :meth:`on_crash` / :meth:`on_restart` to reschedule work around
    dead hosts; see ``repro.datacutter.runtime``.
    """

    def __init__(self, plan: FaultPlan, cluster: Any) -> None:
        self.plan = plan
        self.cluster = cluster
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        self._crash_listeners: Dict[str, List[Callable[[], None]]] = {}
        self._restart_listeners: Dict[str, List[Callable[[], None]]] = {}
        self._host_states: Dict[str, _HostFaultState] = {}
        self.stats: Dict[str, int] = {
            "dropped": 0, "corrupted": 0, "reordered": 0, "flapped": 0,
            "deferred": 0, "crashes": 0, "restarts": 0,
        }

    # -- topology attachment (called by Cluster) -----------------------------

    def attach_port(self, switch: "Switch", port: "Port") -> None:
        """Install link fault state on the port's directions that match
        the plan (delivery-side hooks; directions without a delivery
        callback never consult theirs)."""
        for link in (port.downlink, port.uplink):
            if link is None or link.faults is not None:
                continue
            cfg = self.plan.link_fault_for(link.name)
            if cfg is not None and not cfg.is_trivial:
                link.faults = _LinkFaultState(self, link, cfg)

    def attach_host(self, host: "Host") -> None:
        """Install host fault state: slowdown windows wrap the
        heterogeneity model now; crash/restart events go on the heap."""
        cfg: HostFault = self.plan.host_fault_for(host.name)
        if cfg is None or cfg.is_trivial:
            return
        if cfg.slowdown_windows:
            host.slowdown = WindowedSlowdown(host.slowdown,
                                             cfg.slowdown_windows)
        if cfg.crash_at is not None:
            state = _HostFaultState(self, host)
            self._host_states[host.name] = state
            host.fault_state = state
            ev = self.sim.timeout(max(0.0, cfg.crash_at - self.sim.now))
            ev.add_callback(lambda _e, h=host: self._crash(h))
            if cfg.restart_at is not None:
                ev = self.sim.timeout(
                    max(0.0, cfg.restart_at - self.sim.now))
                ev.add_callback(lambda _e, h=host: self._restart(h))

    # -- crash/restart listeners ---------------------------------------------

    def on_crash(self, host_name: str, fn: Callable[[], None]) -> None:
        """Call *fn* when *host_name* crashes (no-op name: never)."""
        self._crash_listeners.setdefault(host_name, []).append(fn)

    def on_restart(self, host_name: str, fn: Callable[[], None]) -> None:
        self._restart_listeners.setdefault(host_name, []).append(fn)

    def _crash(self, host: "Host") -> None:
        state = self._host_states[host.name]
        state.down = True
        host.crashed = True
        self.stats["crashes"] += 1
        if self.tracer.enabled:
            self.tracer.emit("faults.crash", host=host.name)
        for fn in self._crash_listeners.get(host.name, ()):
            fn()

    def _restart(self, host: "Host") -> None:
        state = self._host_states[host.name]
        state.down = False
        host.crashed = False
        self.stats["restarts"] += 1
        if self.tracer.enabled:
            self.tracer.emit("faults.restart", host=host.name)
        # Replay the blackout backlog before listeners run, so restart
        # handlers observe a live, caught-up host.
        state.replay()
        for fn in self._restart_listeners.get(host.name, ()):
            fn()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FaultInjector plan={self.plan.name!r} stats={self.stats}>"
