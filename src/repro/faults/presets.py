"""Named, calibrated fault plans.

These are the plans the chaos bench suite commits baselines for, plus
small examples for the CLI (``python -m repro faults describe <name>``).
Calibration means two things: the fault times fall inside the driven
workload's simulated duration (for both full and ``--quick`` axes, so
CI exercises the same fault classes), and the fault classes are chosen
so every run still terminates — flap windows buffer rather than drop,
and crashes are paired with restarts so deferred work replays.

Plans are immutable module constants; :func:`get_preset` looks one up
by name and :data:`PRESETS` lists them all.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import FaultPlanError
from repro.faults.plan import FaultPlan, HostFault, LinkFault

__all__ = ["PRESETS", "get_preset", "preset_names"]


#: Empty plan: installs nothing; bit-identical to running without one.
NONE = FaultPlan.empty()

#: Figure 8 chaos leg.  The update-rate metric measures the window
#: between the first and last *completed* update, so one-shot faults in
#: the warmup would be invisible; instead the visualization sink's
#: receive side flaps on a duty cycle — a 30 ms blackout (buffer, then
#: replay in order) at the top of every 100 ms, spanning the whole run
#: for every block size — and one clip-stage host (node04) browns out,
#: computing 8x slower throughout (demand-driven scheduling routes
#: around it).  Calibrated effect: 20-35% update-rate loss per cell.
CHAOS_FIG8 = FaultPlan(
    name="chaos-fig8",
    seed=8,
    links={
        "clan.node09.down": LinkFault(
            flap_windows=tuple(
                (0.1 * k, 0.1 * k + 0.030) for k in range(30)
            ),
        ),
    },
    hosts={
        "node04": HostFault(slowdown_windows=((0.0, 3.0, 8.0),)),
    },
)

#: Figure 11 chaos leg: one worker blacks out for 20 ms mid-run.  The
#: demand-driven scheduler reroutes around it (its copies are marked
#: dead on crash) and its deferred blocks replay at restart; execution
#: time rises by roughly the lost capacity.  Times sit inside even the
#: quick run (~60 ms simulated).
CHAOS_FIG11 = FaultPlan(
    name="chaos-fig11",
    seed=11,
    hosts={
        "worker01": HostFault(crash_at=0.010, restart_at=0.030),
    },
)

#: Example transient-slowdown plan (not benched): one worker computes
#: 8x slower during two windows — the fault-plan equivalent of the
#: paper's dynamically slow node.
BROWNOUT = FaultPlan(
    name="brownout",
    seed=5,
    hosts={
        "worker01": HostFault(
            slowdown_windows=((0.005, 0.015, 8.0), (0.030, 0.040, 8.0)),
        ),
    },
)

#: Straggler plan for the replicated-dispatch (``tails``) scenario:
#: the two classic straggler mechanisms, each on its own worker and
#: staggered in time so at any instant at most one worker straggles
#: (a hedged replica therefore has a healthy copy to land on).  One
#: worker's inbound link flaps on a duty cycle — a 10 ms delivery
#: blackout (queries buffer on the wire, then replay in order) at the
#: top of every 25 ms — and another browns out, computing 8x slower
#: during 8 ms windows placed in the flap gaps.  Windows repeat across
#: both the quick (~30 ms) and full (~100 ms) tails horizons, so CI
#: exercises both mechanisms.
#: Unreplicated (k=1) queries caught behind either straggler stall for
#: many milliseconds; hedged replicas (k>=2) reroute them to a healthy
#: copy — the tails suite's p999 claim measures exactly that rescue.
STRAGGLER = FaultPlan(
    name="straggler",
    seed=17,
    links={
        "clan.tworker02.down": LinkFault(
            flap_windows=tuple(
                (0.025 * k + 0.002, 0.025 * k + 0.012) for k in range(8)
            ),
        ),
    },
    hosts={
        "tworker01": HostFault(
            slowdown_windows=tuple(
                (0.025 * k + 0.014, 0.025 * k + 0.022, 8.0)
                for k in range(8)
            ),
        ),
    },
)

#: Example slowdown-only straggler (not benched): the brownout half of
#: :data:`STRAGGLER` alone, for isolating compute stragglers from
#: delivery stragglers when exploring replication policies by hand.
STRAGGLER_SLOW = FaultPlan(
    name="straggler-slow",
    seed=19,
    hosts={
        "tworker01": HostFault(
            slowdown_windows=tuple(
                (0.025 * k + 0.014, 0.025 * k + 0.022, 8.0)
                for k in range(8)
            ),
        ),
    },
)

#: Example lossy-control plan (not benched): 30% loss on one host's
#: receive side — pair with a transport ``RetryPolicy`` so connection
#: handshakes survive via retransmission.  Dropping kernel-TCP *data*
#: is not modeled (the simulated stack has no data retransmission), so
#: loss plans belong on handshake/control traffic.
LOSSY_CONNECT = FaultPlan(
    name="lossy-connect",
    seed=3,
    links={"clan.node01.down": LinkFault(loss_rate=0.3)},
)


PRESETS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        NONE,
        CHAOS_FIG8,
        CHAOS_FIG11,
        BROWNOUT,
        STRAGGLER,
        STRAGGLER_SLOW,
        LOSSY_CONNECT,
    )
}


def preset_names() -> list:
    return sorted(PRESETS)


def get_preset(name: str) -> FaultPlan:
    """Look a preset plan up by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown fault plan {name!r}; have {preset_names()}"
        ) from None
