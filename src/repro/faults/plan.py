"""Declarative fault plans and the ambient-plan context.

A :class:`FaultPlan` describes *what* goes wrong in a run — per-link
loss/corruption/reorder rates, link flap (blackout) windows, host
crash/restart events, transient host slowdowns — separately from *how*
the simulation reacts (``repro.faults.injector`` installs the hooks;
the transports and DataCutter carry the resilience mechanisms).

Plans are pure data: JSON round-trippable (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`), hashable into a canonical
:meth:`fingerprint` that keys the bench result cache, and validated at
construction so a malformed plan fails loudly before a simulation
starts.

Ambient installation mirrors :func:`repro.sim.trace.tracing`: wrap any
driver in ``with injecting(plan):`` and every
:class:`~repro.cluster.topology.Cluster` built inside the block adopts
the plan — no plumbing through driver signatures.  An empty plan (or
no plan) installs nothing: the fault hooks stay ``None`` and every hot
path pays a single attribute check, so fault-free runs are
bit-identical to a tree without this module.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import FaultPlanError

__all__ = [
    "LinkFault",
    "HostFault",
    "FaultPlan",
    "active_plan",
    "active_fingerprint",
    "set_active_plan",
    "injecting",
]


def _windows(raw) -> Tuple[Tuple[float, ...], ...]:
    return tuple(tuple(float(x) for x in w) for w in raw)


@dataclass(frozen=True)
class LinkFault:
    """Fault behavior of one link direction (or a glob of them).

    Rates are per-delivery probabilities drawn from the plan's
    deterministic per-link RNG stream; ``flap_windows`` are absolute
    simulated-time ``(start, end)`` intervals during which the link
    buffers deliveries and releases them FIFO at ``end`` (a blackout
    with receiver-side buffering — nothing is lost, so flapped runs
    always terminate).
    """

    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    flap_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for label in ("loss_rate", "corrupt_rate", "reorder_rate"):
            rate = getattr(self, label)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{label} must be in [0, 1], got {rate}")
        object.__setattr__(self, "flap_windows", _windows(self.flap_windows))
        for start, end in self.flap_windows:
            if not 0.0 <= start < end:
                raise FaultPlanError(
                    f"flap window ({start}, {end}) needs 0 <= start < end")

    @property
    def is_trivial(self) -> bool:
        return (self.loss_rate == 0.0 and self.corrupt_rate == 0.0
                and self.reorder_rate == 0.0 and not self.flap_windows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loss_rate": self.loss_rate,
            "corrupt_rate": self.corrupt_rate,
            "reorder_rate": self.reorder_rate,
            "flap_windows": [list(w) for w in self.flap_windows],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LinkFault":
        return cls(
            loss_rate=float(d.get("loss_rate", 0.0)),
            corrupt_rate=float(d.get("corrupt_rate", 0.0)),
            reorder_rate=float(d.get("reorder_rate", 0.0)),
            flap_windows=_windows(d.get("flap_windows", ())),
        )


@dataclass(frozen=True)
class HostFault:
    """Fault behavior of one host.

    ``crash_at``/``restart_at`` bound one blackout window: from the
    crash the host's stacks defer every arriving item and DataCutter
    schedulers stop routing new work to its filter copies; at the
    restart deferred items replay in arrival order and the copies are
    marked alive again.  A crash with no restart is permanent — valid
    for scheduler-level experiments, but a run whose completion needs
    the host will (correctly) never finish, so bench plans always pair
    the two.

    ``slowdown_windows`` are ``(start, end, factor)`` intervals during
    which the host's application computation is multiplied by
    ``factor`` on top of its configured heterogeneity model — the
    transient-slowdown fault class, sampled per block exactly like
    :class:`repro.cluster.hetero.RandomSlowdown`.
    """

    crash_at: Optional[float] = None
    restart_at: Optional[float] = None
    slowdown_windows: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.restart_at is not None:
            if self.crash_at is None:
                raise FaultPlanError("restart_at without crash_at")
            if self.restart_at <= self.crash_at:
                raise FaultPlanError(
                    f"restart_at {self.restart_at} must follow "
                    f"crash_at {self.crash_at}")
        if self.crash_at is not None and self.crash_at < 0:
            raise FaultPlanError(f"crash_at must be >= 0, got {self.crash_at}")
        object.__setattr__(
            self, "slowdown_windows", _windows(self.slowdown_windows))
        for start, end, factor in self.slowdown_windows:
            if not 0.0 <= start < end:
                raise FaultPlanError(
                    f"slowdown window ({start}, {end}) needs 0 <= start < end")
            if factor < 1.0:
                raise FaultPlanError(
                    f"slowdown factor must be >= 1, got {factor}")

    @property
    def is_trivial(self) -> bool:
        return self.crash_at is None and not self.slowdown_windows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "crash_at": self.crash_at,
            "restart_at": self.restart_at,
            "slowdown_windows": [list(w) for w in self.slowdown_windows],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "HostFault":
        crash = d.get("crash_at")
        restart = d.get("restart_at")
        return cls(
            crash_at=None if crash is None else float(crash),
            restart_at=None if restart is None else float(restart),
            slowdown_windows=_windows(d.get("slowdown_windows", ())),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule for one run.

    ``links`` maps link-direction name patterns to :class:`LinkFault`.
    Names follow ``{fabric}.{host}.{up|down}`` (e.g.
    ``clan.node09.down``); patterns may use :mod:`fnmatch` globs
    (``clan.*.down`` faults every receive side on the cLAN fabric).
    Faults act at the *delivery* (receive) end of a direction — where a
    real NIC's CRC check discards frames — so ``.down`` patterns are
    the ones that matter on switch fabrics.  ``hosts`` maps exact host
    names to :class:`HostFault`.

    ``seed`` roots every probabilistic draw: each faulted link derives
    an independent RNG stream from ``(seed, link name)``, so outcomes
    do not depend on which other links are faulted or on executor
    parallelism.
    """

    name: str = "unnamed"
    seed: int = 0
    links: Dict[str, LinkFault] = field(default_factory=dict)
    hosts: Dict[str, HostFault] = field(default_factory=dict)

    @classmethod
    def empty(cls, name: str = "none") -> "FaultPlan":
        """A plan that installs nothing (bit-identical to no plan)."""
        return cls(name=name)

    @property
    def is_empty(self) -> bool:
        return (all(lf.is_trivial for lf in self.links.values())
                and all(hf.is_trivial for hf in self.hosts.values()))

    # -- matching ------------------------------------------------------------

    def link_fault_for(self, link_name: str) -> Optional[LinkFault]:
        """The fault spec matching *link_name*, or None.

        Exact entries win over globs; among globs the lexicographically
        first matching pattern wins (deterministic under dict order).
        """
        exact = self.links.get(link_name)
        if exact is not None:
            return exact
        for pattern in sorted(self.links):
            if fnmatch.fnmatchcase(link_name, pattern):
                return self.links[pattern]
        return None

    def host_fault_for(self, host_name: str) -> Optional[HostFault]:
        return self.hosts.get(host_name)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "links": {k: v.to_dict() for k, v in sorted(self.links.items())},
            "hosts": {k: v.to_dict() for k, v in sorted(self.hosts.items())},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        return cls(
            name=str(d.get("name", "unnamed")),
            seed=int(d.get("seed", 0)),
            links={k: LinkFault.from_dict(v)
                   for k, v in d.get("links", {}).items()},
            hosts={k: HostFault.from_dict(v)
                   for k, v in d.get("hosts", {}).items()},
        )

    def fingerprint(self) -> str:
        """SHA-256 over the plan's *behavioral* content (seed, links,
        hosts — the display name is excluded): the value threaded into
        the bench result-cache key so faulted results can never be
        confused with fault-free ones."""
        doc = self.to_dict()
        doc.pop("name")
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        """Human-readable multi-line summary (CLI ``faults describe``)."""
        lines = [f"fault plan {self.name!r}  (seed={self.seed}, "
                 f"fingerprint={self.fingerprint()[:12]})"]
        if self.is_empty:
            lines.append("  empty: installs nothing")
            return "\n".join(lines)
        for pattern in sorted(self.links):
            lf = self.links[pattern]
            if lf.is_trivial:
                continue
            parts = []
            if lf.loss_rate:
                parts.append(f"loss={lf.loss_rate:g}")
            if lf.corrupt_rate:
                parts.append(f"corrupt={lf.corrupt_rate:g}")
            if lf.reorder_rate:
                parts.append(f"reorder={lf.reorder_rate:g}")
            for start, end in lf.flap_windows:
                parts.append(f"flap[{start:g}s..{end:g}s]")
            lines.append(f"  link {pattern}: " + ", ".join(parts))
        for host in sorted(self.hosts):
            hf = self.hosts[host]
            if hf.is_trivial:
                continue
            parts = []
            if hf.crash_at is not None:
                restart = ("never" if hf.restart_at is None
                           else f"{hf.restart_at:g}s")
                parts.append(f"crash at {hf.crash_at:g}s, restart {restart}")
            for start, end, factor in hf.slowdown_windows:
                parts.append(f"slowdown x{factor:g} [{start:g}s..{end:g}s]")
            lines.append(f"  host {host}: " + ", ".join(parts))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Ambient plan (the tracing() pattern)
# ---------------------------------------------------------------------------

_active: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The ambient fault plan, or None (fault-free)."""
    return _active


def active_fingerprint() -> Optional[str]:
    """The ambient plan's fingerprint, or None when no non-empty plan
    is active — the exact value the bench cache key records."""
    if _active is None or _active.is_empty:
        return None
    return _active.fingerprint()


def set_active_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install *plan* as the ambient plan; returns the previous one."""
    global _active
    previous = _active
    _active = plan
    return previous


@contextmanager
def injecting(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Make *plan* ambient for the duration of the block.

    Every :class:`~repro.cluster.topology.Cluster` constructed inside
    adopts it (builds a :class:`~repro.faults.injector.FaultInjector`
    unless the plan is empty), exactly as clusters adopt the ambient
    tracer from :func:`repro.sim.trace.tracing`.
    """
    previous = set_active_plan(plan)
    try:
        yield plan
    finally:
        set_active_plan(previous)
