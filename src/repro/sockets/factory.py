"""Protocol factory: one string selects the transport.

The paper's applications are "written using the sockets interface" and
moved between TCP and SocketVIA without code changes; this module is
the simulation's version of relinking against a different library::

    api = ProtocolAPI(cluster, "socketvia")     # or "tcp", "tcp-fe"
    listener = api.listen("node01", 5000)
    sock = api.socket("node00")
    yield from sock.connect(("node01", 5000))

Stacks are created lazily per host and cached on the
:class:`~repro.cluster.topology.Cluster`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.cluster.host import Host
from repro.cluster.topology import Cluster
from repro.errors import NetworkError
from repro.net.calibration import get_model
from repro.net.model import ProtocolCostModel
from repro.sockets.api import BaseSocket, ListenerSocket
from repro.sockets.socketvia import SocketViaStack
from repro.tcp.stack import TcpStack

__all__ = ["ProtocolAPI", "PROTOCOLS"]

#: protocol name -> (stack class, default fabric)
PROTOCOLS = {
    "tcp": (TcpStack, "clan"),
    "socketvia": (SocketViaStack, "clan"),
    "tcp-fe": (TcpStack, "ethernet"),
}


class ProtocolAPI:
    """Sockets for one protocol on one cluster.

    Parameters
    ----------
    cluster:
        The cluster to operate on.
    protocol:
        "tcp" (kernel sockets over cLAN LANE), "socketvia" (user-level
        sockets over VIA), or "tcp-fe" (kernel sockets over Fast
        Ethernet).
    fabric:
        Override the default fabric name.
    model:
        Override the calibrated cost model (ablations).
    stack_options:
        Extra keyword arguments for the stack constructor (e.g.
        ``credits=`` for SocketVIA, ``window=`` for TCP).
    """

    def __init__(
        self,
        cluster: Cluster,
        protocol: str,
        fabric: Optional[str] = None,
        model: Optional[ProtocolCostModel] = None,
        **stack_options: Any,
    ) -> None:
        if protocol not in PROTOCOLS:
            raise NetworkError(
                f"unknown protocol {protocol!r}; have {sorted(PROTOCOLS)}"
            )
        self.cluster = cluster
        self.protocol = protocol
        stack_cls, default_fabric = PROTOCOLS[protocol]
        self._stack_cls = stack_cls
        self.fabric_name = fabric or default_fabric
        base_model_name = "tcp-fe" if protocol == "tcp-fe" else protocol
        self.model = model or get_model(base_model_name)
        self._stack_options = stack_options
        self._stacks: Dict[str, Any] = {}

    # -- host resolution --------------------------------------------------------------

    def _resolve(self, host: Union[str, Host]) -> Host:
        if isinstance(host, Host):
            return host
        return self.cluster.host(host)

    def stack(self, host: Union[str, Host]) -> Any:
        """The (lazily created) protocol stack on *host*.

        Stacks are shared cluster-wide per (host, protocol, fabric): two
        ``ProtocolAPI`` objects — e.g. two filter-group instances — use
        the same kernel/NIC on a host, exactly like two processes on one
        machine.  Stack options must agree with the first creator's.
        """
        h = self._resolve(host)
        stack = self._stacks.get(h.name)
        if stack is None:
            registry = h.services.setdefault("protocol_stacks", {})
            key = (self.protocol, self.fabric_name)
            stack = registry.get(key)
            if stack is None:
                stack = self._stack_cls(
                    h,
                    self.cluster.fabric(self.fabric_name),
                    model=self.model,
                    **self._stack_options,
                )
                registry[key] = stack
            self._stacks[h.name] = stack
        return stack

    # -- sockets -----------------------------------------------------------------------

    def socket(self, host: Union[str, Host]) -> BaseSocket:
        """A fresh unconnected socket on *host*."""
        return self.stack(host).socket()

    def listen(self, host: Union[str, Host], port: int) -> ListenerSocket:
        """Bind a listener at ``host:port``."""
        return self.stack(host).listen(port)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ProtocolAPI {self.protocol!r} fabric={self.fabric_name!r} "
            f"stacks={sorted(self._stacks)}>"
        )
