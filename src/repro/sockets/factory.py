"""Protocol factory: one string selects the transport.

The paper's applications are "written using the sockets interface" and
moved between TCP and SocketVIA without code changes; this module is
the simulation's version of relinking against a different library::

    api = ProtocolAPI(cluster, "socketvia")     # or "tcp", "udp", "tcp-fe"
    listener = api.listen("node01", 5000)
    sock = api.socket("node00")
    yield from sock.connect(("node01", 5000))

The name → stack mapping lives in the transport registry
(:mod:`repro.transport.registry`); this module registers the built-in
backends and resolves names through it, so a new transport becomes
selectable with one :func:`~repro.transport.registry.register_transport`
call — no factory edits.  Stacks are created lazily per host and cached
on the host's service registry.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.cluster.host import Host
from repro.cluster.topology import Cluster
from repro.errors import NetworkError
from repro.net.model import ProtocolCostModel
from repro.sockets.api import BaseSocket, ListenerSocket
from repro.sockets.socketvia import SocketViaStack
from repro.tcp.stack import TcpStack
from repro.transport.registry import (
    get_transport,
    register_transport,
    transport_names,
)
from repro.udp.stack import UdpStack

__all__ = ["ProtocolAPI", "PROTOCOLS"]

# The built-in backends.  "udp" borrows the TCP cost model: both ride
# the same kernel path, and the paper calibrates only the TCP figures.
register_transport("tcp", TcpStack, default_fabric="clan")
register_transport("socketvia", SocketViaStack, default_fabric="clan")
register_transport("tcp-fe", TcpStack, default_fabric="ethernet",
                   model_name="tcp-fe")
register_transport("udp", UdpStack, default_fabric="clan", model_name="tcp")


class _ProtocolsView(Mapping):
    """Live read-only view of the registry in the legacy
    ``name -> (stack class, default fabric)`` shape."""

    def __getitem__(self, name: str) -> Tuple[type, str]:
        try:
            spec = get_transport(name)
        except NetworkError:
            raise KeyError(name) from None
        return spec.stack_cls, spec.default_fabric

    def __iter__(self) -> Iterator[str]:
        return iter(transport_names())

    def __len__(self) -> int:
        return len(transport_names())

    def __repr__(self) -> str:  # pragma: no cover
        return f"PROTOCOLS({sorted(self)})"


#: protocol name -> (stack class, default fabric); tracks the registry.
PROTOCOLS = _ProtocolsView()


class ProtocolAPI:
    """Sockets for one protocol on one cluster.

    Parameters
    ----------
    cluster:
        The cluster to operate on.
    protocol:
        Any registered transport name: "tcp" (kernel sockets over cLAN
        LANE), "socketvia" (user-level sockets over VIA), "tcp-fe"
        (kernel sockets over Fast Ethernet), "udp" (kernel datagrams),
        or a backend added via ``register_transport``.
    fabric:
        Override the transport's default fabric name.
    model:
        Override the calibrated cost model (ablations).
    stack_options:
        Extra keyword arguments for the stack constructor (e.g.
        ``credits=`` for SocketVIA, ``window=`` for TCP).
    """

    def __init__(
        self,
        cluster: Cluster,
        protocol: str,
        fabric: Optional[str] = None,
        model: Optional[ProtocolCostModel] = None,
        **stack_options: Any,
    ) -> None:
        spec = get_transport(protocol)
        self.cluster = cluster
        self.protocol = protocol
        self._stack_cls = spec.stack_cls
        self.fabric_name = fabric or spec.default_fabric
        self.model = model or spec.default_model()
        self._stack_options = stack_options
        self._stacks: Dict[str, Any] = {}

    # -- host resolution --------------------------------------------------------------

    def _resolve(self, host: Union[str, Host]) -> Host:
        if isinstance(host, Host):
            return host
        return self.cluster.host(host)

    def stack(self, host: Union[str, Host]) -> Any:
        """The (lazily created) protocol stack on *host*.

        Stacks are shared cluster-wide per (host, protocol, fabric): two
        ``ProtocolAPI`` objects — e.g. two filter-group instances — use
        the same kernel/NIC on a host, exactly like two processes on one
        machine.  Stack options must agree with the first creator's.
        """
        h = self._resolve(host)
        stack = self._stacks.get(h.name)
        if stack is None:
            registry = h.services.setdefault("protocol_stacks", {})
            key = (self.protocol, self.fabric_name)
            stack = registry.get(key)
            if stack is None:
                stack = self._stack_cls(
                    h,
                    self.cluster.fabric(self.fabric_name),
                    model=self.model,
                    **self._stack_options,
                )
                registry[key] = stack
            self._stacks[h.name] = stack
        return stack

    # -- sockets -----------------------------------------------------------------------

    def socket(self, host: Union[str, Host]) -> BaseSocket:
        """A fresh unconnected socket on *host*."""
        return self.stack(host).socket()

    def listen(self, host: Union[str, Host], port: int) -> ListenerSocket:
        """Bind a listener at ``host:port``."""
        return self.stack(host).listen(port)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ProtocolAPI {self.protocol!r} fabric={self.fabric_name!r} "
            f"stacks={sorted(self._stacks)}>"
        )
