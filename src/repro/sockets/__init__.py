"""Unified simulated sockets: one API over kernel TCP and SocketVIA."""

from repro.sockets.api import Address, BaseSocket, ListenerSocket
from repro.sockets.factory import PROTOCOLS, ProtocolAPI
from repro.sockets.socketvia import SocketViaSocket, SocketViaStack

__all__ = [
    "Address",
    "BaseSocket",
    "ListenerSocket",
    "ProtocolAPI",
    "PROTOCOLS",
    "SocketViaStack",
    "SocketViaSocket",
]
