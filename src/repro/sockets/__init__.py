"""Unified simulated sockets: one API over kernel TCP and SocketVIA."""

from repro.sockets.api import Address, BaseSocket, ListenerSocket

__all__ = [
    "Address",
    "BaseSocket",
    "ListenerSocket",
    "ProtocolAPI",
    "PROTOCOLS",
    "SocketViaStack",
    "SocketViaSocket",
]

# The factory and the SocketVIA backend sit above repro.transport, which
# itself builds on repro.sockets.api; loading them eagerly here would
# make ``import repro.transport`` circular.  PEP 562 keeps them lazy.
_LAZY = {
    "ProtocolAPI": "repro.sockets.factory",
    "PROTOCOLS": "repro.sockets.factory",
    "SocketViaStack": "repro.sockets.socketvia",
    "SocketViaSocket": "repro.sockets.socketvia",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
