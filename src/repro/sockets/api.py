"""The unified simulated sockets interface.

Both transports expose the same blocking, message-oriented socket API so
DataCutter (and user code) is written once and bound to a protocol by a
single string — exactly the property the paper's SocketVIA exists to
provide for real applications.

All blocking calls are *generators* to be driven by a simulation
process::

    def client(sim, proto):
        sock = proto.socket(host_a)
        yield from sock.connect(("node01", 5000))
        yield from sock.send_message(4096, payload="hello")
        reply = yield from sock.recv_message()
        sock.close()

Messages (not bytes) are the unit of exchange: DataCutter moves opaque
data buffers, and the paper's experiments are phrased entirely in terms
of data-chunk messages.  TCP framing (length prefixes over the byte
stream) is considered part of the stack and its cost model.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from repro.errors import ReceiveTimeout, SocketClosedError
from repro.net.message import Message
from repro.sim import Event, Store
from repro.sim.trace import NULL_TRACER

__all__ = ["Address", "BaseSocket", "ListenerSocket"]

#: (host_name, port_number)
Address = Tuple[str, int]


class BaseSocket:
    """Abstract connected-socket surface shared by all transports.

    Concrete stacks implement ``_do_connect``, ``_do_send`` and
    ``_do_close``; received messages appear in ``_rx_messages``.
    """

    def __init__(self, stack: Any) -> None:
        self.stack = stack
        self.sim = stack.sim
        self._tracer = getattr(stack, "tracer", NULL_TRACER)
        self._proto = getattr(stack, "tag", type(stack).__name__)
        self.local_address: Optional[Address] = None
        self.peer_address: Optional[Address] = None
        self.connected = False
        self.closed = False
        #: Fully reassembled inbound messages, FIFO.
        self._rx_messages: Store = Store(self.sim)
        #: kind -> fn(kind, payload, size) for control datagrams.
        self._control_handlers: dict = {}
        #: Bytes from a stream write not yet consumed by recv_bytes.
        self._stream_leftover = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- to be provided by the concrete stack ----------------------------------

    def _do_connect(self, address: Address) -> Generator[Event, Any, None]:
        raise NotImplementedError

    def _do_send(self, message: Message) -> Generator[Event, Any, None]:
        raise NotImplementedError

    def _do_close(self) -> None:
        raise NotImplementedError

    # -- public API --------------------------------------------------------------

    def connect(self, address: Address) -> Generator[Event, Any, None]:
        """Actively open a connection to ``(host, port)``."""
        self._check_open()
        if self.connected:
            raise SocketClosedError("socket is already connected")
        yield from self._do_connect(address)
        self.connected = True

    def send_message(
        self, size: int, payload: Any = None, kind: str = "data"
    ) -> Generator[Event, Any, Message]:
        """Send one *size*-byte message; blocks on transport flow control.

        Returns the :class:`~repro.net.message.Message` actually sent.
        """
        self._check_connected()
        if self._tracer.enabled:
            self._tracer.emit(
                "sockets.send", proto=self._proto, size=size, kind=kind
            )
        msg = Message(size=size, payload=payload, kind=kind, sent_at=self.sim.now)
        yield from self._do_send(msg)
        self.bytes_sent += size
        return msg

    def recv_message(
        self, timeout: Optional[float] = None
    ) -> Generator[Event, Any, Message]:
        """Receive the next message; blocks until one is available.

        With *timeout* (seconds of simulated time) the wait is bounded:
        if no message arrives in time the pending receive is withdrawn
        (no message is consumed or lost) and
        :class:`~repro.errors.ReceiveTimeout` is raised — the socket
        stays usable, like ``SO_RCVTIMEO``.
        """
        self._check_open()
        if timeout is None:
            msg = yield self._rx_messages.get()
        else:
            get_ev = self._rx_messages.get()
            timer = self.sim.timeout(timeout)
            yield self.sim.any_of([get_ev, timer])
            if not get_ev.triggered:
                self._rx_messages.cancel_get(get_ev)
                raise ReceiveTimeout(
                    f"no message within {timeout:g}s on {self._proto} socket"
                )
            if not timer.triggered:
                timer.cancel()
            msg = get_ev.value
        if msg is None:
            # None is the in-band end-of-stream marker posted by close.
            raise SocketClosedError("peer closed the connection")
        self.bytes_received += msg.size
        if self._tracer.enabled:
            self._tracer.emit(
                "sockets.recv", proto=self._proto, size=msg.size,
                kind=msg.kind, latency=self.sim.now - msg.sent_at,
            )
        self._after_recv(msg)
        return msg

    def _after_recv(self, message: Message) -> None:
        """Hook run when the application consumes a message (stacks use
        it to reclaim flow-control resources)."""

    # -- control datagrams --------------------------------------------------------

    def send_control(
        self, size: int, kind: str = "ack", payload: Any = None
    ) -> Generator[Event, Any, None]:
        """Send a small out-of-band control datagram.

        Control datagrams carry the same host and wire costs as a
        *size*-byte message but bypass per-message flow control,
        fragmentation and reassembly — they are single small frames by
        construction (DataCutter acknowledgments).  Delivery is
        unordered relative to data.  Stacks built on
        :class:`~repro.transport.base.StackBase` provide the lean path
        (``send_control_datagram``); transports without one fall back
        to a regular message.
        """
        self._check_connected()
        lean = getattr(self.stack, "send_control_datagram", None)
        if lean is not None:
            yield from lean(self, size, kind, payload)
        else:
            yield from self._do_send(
                Message(size=size, payload=payload, kind=kind,
                        sent_at=self.sim.now)
            )
        self.bytes_sent += size

    def on_control(self, kind: str, fn) -> None:
        """Dispatch arriving *kind* datagrams to ``fn(kind, payload,
        size)`` instead of the receive queue."""
        self._control_handlers[kind] = fn

    def _deliver_control(self, kind: str, payload: Any, size: int) -> None:
        fn = self._control_handlers.get(kind)
        if fn is not None:
            fn(kind, payload, size)
        else:
            self._deliver(Message(size=size, payload=payload, kind=kind))

    def try_recv_message(self) -> Optional[Message]:
        """Non-blocking receive: the next message or ``None``."""
        if self.closed:
            raise SocketClosedError("socket is closed")
        ok, msg = self._rx_messages.try_get()
        if not ok or msg is None:
            return None
        self.bytes_received += msg.size
        self._after_recv(msg)
        return msg

    @property
    def rx_pending(self) -> int:
        """Messages received and waiting to be read."""
        return self._rx_messages.size

    # -- byte-stream view ----------------------------------------------------------
    #
    # The paper's applications were written against the byte-stream
    # sockets API; these wrappers provide it over the message machinery.
    # Bytes are counted, not stored: ``recv_bytes`` returns how many
    # bytes were consumed, exactly like ``recv(2)``'s return length.

    def send_bytes(self, nbytes: int) -> Generator[Event, Any, None]:
        """``send()``/``write()``: push *nbytes* onto the stream."""
        if nbytes <= 0:
            raise ValueError(f"send_bytes needs a positive count, got {nbytes}")
        yield from self.send_message(nbytes, kind="stream")

    def recv_bytes(self, max_bytes: int) -> Generator[Event, Any, int]:
        """``recv()``: up to *max_bytes* from the stream; blocks until
        at least one byte is available.  Returns the count consumed.

        Reads do not align with writes: one write may satisfy several
        reads and vice versa, exactly like a TCP byte stream.
        """
        if max_bytes <= 0:
            raise ValueError(f"recv_bytes needs a positive count, got {max_bytes}")
        if self._stream_leftover == 0:
            msg = yield from self.recv_message()
            self._stream_leftover = msg.size
        take = min(max_bytes, self._stream_leftover)
        self._stream_leftover -= take
        return take

    def recv_exactly(self, nbytes: int) -> Generator[Event, Any, None]:
        """``recv`` loop until exactly *nbytes* have been consumed."""
        remaining = nbytes
        while remaining > 0:
            got = yield from self.recv_bytes(remaining)
            remaining -= got

    def close(self) -> None:
        """Close the socket; the peer sees end-of-stream after in-flight
        data drains."""
        if self.closed:
            return
        self.closed = True
        if self.connected:
            self._do_close()
        self.connected = False

    # -- plumbing used by stacks ----------------------------------------------------

    def _deliver(self, message: Message) -> None:
        # Messages whose kind has a control handler are consumed by it
        # even when they traveled the regular data path (fallback
        # transports without a lean control plane).
        fn = self._control_handlers.get(message.kind)
        if fn is not None:
            fn(message.kind, message.payload, message.size)
            return
        ev = self._rx_messages.put(message)
        ev.defused = True

    def _deliver_eof(self) -> None:
        ev = self._rx_messages.put(None)
        ev.defused = True

    def _check_open(self) -> None:
        if self.closed:
            raise SocketClosedError("operation on closed socket")

    def _check_connected(self) -> None:
        self._check_open()
        if not self.connected:
            raise SocketClosedError("socket is not connected")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{type(self).__name__} {self.local_address} -> "
            f"{self.peer_address} connected={self.connected}>"
        )


class ListenerSocket:
    """A passive (listening) socket: accepts inbound connections.

    Created by a stack's ``listen(host, port)``; each ``accept()`` yields
    a connected :class:`BaseSocket`.
    """

    def __init__(self, stack: Any, address: Address) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.address = address
        self.closed = False
        self._pending: Store = Store(self.sim)

    def accept(self) -> Generator[Event, Any, BaseSocket]:
        """Block until a connection arrives; return the server-side socket."""
        if self.closed:
            raise SocketClosedError("accept() on closed listener")
        sock = yield self._pending.get()
        return sock

    def close(self) -> None:
        """Stop accepting (existing connections are unaffected)."""
        if not self.closed:
            self.closed = True
            self.stack._unbind(self.address)

    def _enqueue(self, sock: BaseSocket) -> None:
        ev = self._pending.put(sock)
        ev.defused = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ListenerSocket {self.address}>"
