"""SocketVIA: the user-level sockets layer over VIA.

This is the paper's artifact — a sockets-compatible library written on
the VIA provider, so TCP applications run unchanged on the high
performance substrate.  The construction follows the real design
(Balaji et al. [4], SOVIA, Shah et al.):

* at connect time each side registers a pool of fixed-size buffers
  (``model.mtu`` bytes, default 8 KB) and pre-posts one receive
  descriptor per buffer;
* **credit-based flow control**: the sender holds one credit per
  remote posted buffer and spends one per fragment; arriving data can
  therefore never find the receive queue empty (the VIA error the
  provider would otherwise raise);
* application messages are fragmented into buffer-size chunks with a
  small framing header (message id, offset, last-fragment flag)
  carried as VIA immediate data;
* credits return to the sender as the receiving layer drains each
  fragment out of its registered buffer (modeling an application
  actively in ``recv()``); the sender can never have more than
  ``credits`` fragments in flight, bounding transit buffering at
  ``credits * mtu`` bytes.  Pacing a slow *application* is left to the
  layer above (DataCutter's acknowledgment-based demand-driven
  scheduling), mirroring how the paper's experiments are built;
* credit-update notifications are tiny control frames on the reverse
  path (the real library piggybacks them on data when it can; the
  explicit frame is the worst case and costs wire time accordingly).

The per-host port registry, rx daemon and lean control-datagram path
come from :class:`~repro.transport.base.StackBase`; connection setup
and the data plane are delegated to the :class:`~repro.via.nic.ViaNic`
(VIA dialogs replace the shared SYN handshake, data rides VIA frames
instead of demuxed transmissions), which is why this stack passes
``consume_port=False`` and registers VIA frame handlers instead.

All host/NIC/wire timing comes from the NIC's cost model (default the
calibrated ``SOCKETVIA_CLAN``); the layer itself adds no hidden costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.cluster.host import Host
from repro.cluster.link import Switch
from repro.errors import ProtocolError
from repro.net.calibration import SOCKETVIA_CLAN
from repro.net.message import Message
from repro.net.model import ProtocolCostModel
from repro.sim import Container, Event, Resource, Store
from repro.sim.flow import solve_pipeline
from repro.sockets.api import Address, BaseSocket, ListenerSocket
from repro.transport.base import ControlDatagram, StackBase
from repro.via.descriptors import Descriptor
from repro.via.nic import ViaNic
from repro.via.vi import VirtualInterface

__all__ = ["SocketViaStack", "SocketViaSocket", "CREDIT_FRAME_BYTES"]

#: Wire size charged for an explicit credit-update frame.
CREDIT_FRAME_BYTES = 16

#: Default number of credits (pre-posted 8 KB buffers) per direction.
DEFAULT_CREDITS = 32


@dataclass
class _FragmentHeader:
    """Framing header carried as VIA immediate data with each fragment."""

    msg_id: int
    kind: str
    total_size: int
    offset: int
    size: int
    is_last: bool
    sent_at: float
    #: Credits this fragment accounts for.  1 on the packet path; a
    #: fluid-mode message claims the sender's whole credit window (so
    #: nothing behind it can overtake the collapsed transfer) and the
    #: receiver grants the full claim back in one update.
    credits: int = 1


@dataclass
class _CreditFrame:
    """Reverse-path notification returning *count* credits."""

    dst_vi: int
    count: int


@dataclass
class _RegionAdvert:
    """Control payload advertising a connection's RDMA landing region."""

    handle: Any


@dataclass
class _RdmaHeader:
    """Immediate data delivered with an RDMA-write-with-notify part."""

    msg_id: int
    kind: str
    total_size: int
    offset: int
    size: int
    is_last: bool
    sent_at: float
    payload: Any = None  # carried on the last part


class SocketViaSocket(BaseSocket):
    """A connected SocketVIA endpoint (see :class:`BaseSocket`)."""

    def __init__(self, stack: "SocketViaStack") -> None:
        super().__init__(stack)
        self.vi: Optional[VirtualInterface] = None
        #: Send credits: one per buffer currently posted at the peer.
        self._credits = Container(
            self.sim, capacity=stack.credits, init=stack.credits
        )
        self._send_mutex = Resource(self.sim, 1)
        #: Reusable send descriptors (buffer pool), one per credit.
        self._send_pool: Store = Store(self.sim, capacity=stack.credits)
        # Receive-side reassembly and credit accounting.
        self._rx_got = 0
        self._credits_pending = 0  # consumed buffers not yet advertised
        self._rx_loop_proc = None
        self._tx_reaper = None
        # RDMA transfer mode (paper future work): the peer's landing
        # region, learned via a control advert after connect.
        self._peer_region = None
        self._peer_region_ev: Optional[Event] = None
        self._rdma_mutex = Resource(self.sim, 1)
        #: Lazily-registered 1-byte marker region backing fluid-mode
        #: one-shot send descriptors (the fluid model cycles through
        #: the real pool buffers analytically).
        self._fluid_region = None

    # -- setup ---------------------------------------------------------------------

    def _bind_vi(self, vi: VirtualInterface) -> None:
        """Attach a connected VI: build pools, post receives, start daemons."""
        stack: SocketViaStack = self.stack
        self.vi = vi
        buf = stack.model.mtu
        for _ in range(stack.credits):
            # Receive pool: pre-posted, one credit each.
            rdesc = Descriptor(memory=stack.nic.memory.register_now(buf))
            vi.post_recv(rdesc)
            # Send pool: recycled through the send completion queue.
            sdesc = Descriptor(memory=stack.nic.memory.register_now(buf))
            ok = self._send_pool.try_put(sdesc)
            assert ok
        self._rx_loop_proc = self.sim.process(
            self._rx_loop(), name=f"{stack.host.name}.sv.rx.{vi.vi_id}"
        )
        self._tx_reaper = self.sim.process(
            self._tx_reap_loop(), name=f"{stack.host.name}.sv.reap.{vi.vi_id}"
        )
        # The VI id doubles as the endpoint id in the shared registry
        # (control datagrams address the peer's vi_id).
        stack._endpoints[vi.vi_id] = self
        if stack.rdma_threshold is not None:
            # Prepare the landing region + learn-handler; the advert
            # itself goes out in _post_establish once the dialog has a
            # peer (never for refused connections).
            self._peer_region_ev = Event(self.sim)
            self._my_region = stack.nic.memory.register_now(
                stack.rdma_region_bytes
            )
            self.on_control(
                "rdma_region",
                lambda kind, payload, size: self._learn_region(payload),
            )
        if vi.peer_vi is not None:
            # Server-side sockets are bound to an already-connected VI.
            self._post_establish()

    def _post_establish(self) -> None:
        """Hook run once the VI dialog has completed successfully."""
        if self.stack.rdma_threshold is not None:
            self.sim.process(
                self._advertise_region(self._my_region),
                name=f"{self.stack.host.name}.sv.advert.{self.vi.vi_id}",
            )

    def _learn_region(self, advert: "_RegionAdvert") -> None:
        self._peer_region = advert.handle
        if self._peer_region_ev is not None and not self._peer_region_ev.triggered:
            self._peer_region_ev.succeed()

    def _advertise_region(self, region):
        self._rdma_send_mem = self.stack.nic.memory.register_now(
            self.stack.rdma_region_bytes
        )
        yield from self.stack.send_control_datagram(
            self, CREDIT_FRAME_BYTES, "rdma_region", _RegionAdvert(region)
        )

    # -- connect -------------------------------------------------------------------

    def _do_connect(self, address: Address) -> Generator:
        host_name, port = address
        stack: SocketViaStack = self.stack
        vi = stack.nic.make_vi(name=f"sv.{stack.host.name}:{port}")
        # Bind before the dialog completes so receive buffers are posted
        # ahead of any data the peer might send immediately after accept.
        self._bind_vi(vi)
        yield from stack.nic.connect(vi, host_name, port)
        self._post_establish()
        self.local_address = (stack.host.name, stack._ephemeral_port())
        self.peer_address = (host_name, port)

    # -- send ------------------------------------------------------------------------

    def _do_send(self, message: Message) -> Generator:
        stack: SocketViaStack = self.stack
        if (
            stack.rdma_threshold is not None
            and message.size >= stack.rdma_threshold
        ):
            yield from self._do_send_rdma(message)
            return
        buf = stack.model.mtu
        mutex = self._send_mutex.request()
        yield mutex
        try:
            if self._fluid_eligible(message.size):
                yield from self._send_fluid(message)
                return
            remaining = message.size
            offset = 0
            while True:
                frag = min(remaining, buf)
                is_last = frag == remaining
                yield self._credits.get(1)
                desc: Descriptor = yield self._send_pool.get()
                desc.length = frag
                desc.payload = message.payload if is_last else None
                desc.immediate = _FragmentHeader(
                    msg_id=message.msg_id,
                    kind=message.kind,
                    total_size=message.size,
                    offset=offset,
                    size=frag,
                    is_last=is_last,
                    sent_at=message.sent_at,
                )
                # Charges user-level send cost on the host CPU, then the
                # NIC engine carries the fragment.
                yield from self.vi.post_send(desc)
                offset += frag
                remaining -= frag
                if is_last:
                    break
        finally:
            self._send_mutex.release(mutex)

    def _fluid_eligible(self, size: int) -> bool:
        """Gate for the credit-steady fluid phase: a message that
        consumes the whole credit window by itself, every credit home
        and every pool buffer reaped (nothing in flight on this
        connection), the host CPU idle, fluid mode in effect, and the
        wire path quiet and fault-free.  Anything else takes the
        per-fragment packet path.

        The window-consuming floor (``size >= credits * mtu``) mirrors
        the TCP gate: it is what makes the whole-window credit claim
        in :meth:`_send_fluid` cost-free, because a window-sized
        message exhausts its credits and stalls on their return in
        packet mode too.  Sub-window messages pipeline inside the
        credit window on the packet path; claiming every credit for
        one of them would serialize its successors behind a
        delivery-plus-credit-return round trip — invisible on a LAN,
        a full RTT per message on a high-propagation (WAN) fabric."""
        stack: SocketViaStack = self.stack
        return (
            size >= stack.credits * stack.model.mtu
            and self.vi is not None
            and self._credits.level == stack.credits
            and self._send_pool.size == stack.credits
            and stack.host.cpu.count == 0
            and stack.host.cpu.queue_length == 0
            and stack._fluid_wire_ok(self.vi.peer_host)
        )

    def _send_fluid(self, message: Message) -> Generator:
        """Collapse a bulk message into one analytic VIA transfer.

        The per-fragment host/wire/completion costs run through the
        three-stage flow-shop solve; one descriptor then stands in for
        the whole fragment burst — one credit, one doorbell, one
        completion on each side — with the receiver's analytic residual
        (C3-C2) charged when the completion is reaped.  Credit pacing
        is non-delaying under the gate (the wire is the bottleneck at
        the calibrated costs and every credit starts home), so message
        delivery matches the per-fragment path on an idle fabric; the
        receive-copy work the solve overlapped with the wire still
        occupies the peer's host CPU via
        :meth:`StackBase._fluid_charge_peer`, so concurrent compute on
        the receiving host contends realistically.  The sender's
        ``send()`` return time compresses to the summed host cost (the
        per-fragment path can return later when credits throttle it), a
        documented fluid approximation.
        """
        stack: SocketViaStack = self.stack
        model = stack.model
        buf = model.mtu
        # Claim the whole credit window (the gate guarantees it is
        # home, so the get is instantaneous).  A collapsed transfer is
        # invisible to the packet path's FIFO queues; holding every
        # credit until the receiver grants the claim back keeps any
        # later message — packet fallback, fin marker, RDMA part —
        # strictly behind this one on the wire, preserving in-order
        # delivery per connection.
        yield self._credits.get(stack.credits)
        snd = []
        wire = []
        rcv = []
        remaining = message.size
        while remaining:
            frag = min(remaining, buf)
            snd.append(model.host_send_time(frag))
            wire.append(model.wire_unit_service(frag))
            rcv.append(model.host_recv_time(frag))
            remaining -= frag
        c2, c3 = solve_pipeline(snd, wire, rcv)
        # The receive-copy work that overlapped the wire in the solve
        # still occupies the peer's host CPU for contention purposes
        # (the C3-C2 tail is charged at the completion reap; together
        # they charge exactly sum(rcv)).
        stack._fluid_charge_peer(self.vi.peer_host, sum(rcv) - (c3 - c2))
        region = self._fluid_region
        if region is None:
            region = self._fluid_region = stack.nic.memory.register_now(1)
        desc = Descriptor(
            memory=region,
            length=message.size,
            payload=message.payload,
            immediate=_FragmentHeader(
                msg_id=message.msg_id,
                kind=message.kind,
                total_size=message.size,
                offset=0,
                size=message.size,
                is_last=True,
                sent_at=message.sent_at,
                credits=stack.credits,
            ),
            rx_cost=c3 - c2,
        )
        yield from self.vi.post_send_fluid(
            desc,
            cpu_cost=sum(snd),
            wire_work=sum(wire),
            exit_at=self.sim.now + c2,
        )

    def _do_send_rdma(self, message: Message) -> Generator:
        """RDMA push path (paper future work): the message travels as
        one RDMA Write (with notify) per landing-region-sized part.

        Per part the peer pays only a completion reap — no per-fragment
        descriptor handling, no receive-side copy — and only one credit
        (the notify's posted descriptor) is consumed instead of one per
        8 KB fragment.
        """
        from repro.via.descriptors import Descriptor

        stack: SocketViaStack = self.stack
        mutex = self._rdma_mutex.request()
        yield mutex
        try:
            if self._peer_region is None:
                yield self._peer_region_ev
            part_max = stack.rdma_region_bytes
            remaining = message.size
            offset = 0
            while True:
                part = min(remaining, part_max)
                is_last = part == remaining
                yield self._credits.get(1)
                desc = Descriptor(
                    memory=self._rdma_send_mem,
                    length=part,
                    payload=message.payload if is_last else None,
                    immediate=_RdmaHeader(
                        msg_id=message.msg_id,
                        kind=message.kind,
                        total_size=message.size,
                        offset=offset,
                        size=part,
                        is_last=is_last,
                        sent_at=message.sent_at,
                        payload=message.payload if is_last else None,
                    ),
                )
                yield from self.vi.post_rdma_write(
                    desc, self._peer_region, notify=True
                )
                offset += part
                remaining -= part
                if is_last:
                    break
        finally:
            self._rdma_mutex.release(mutex)

    def _tx_reap_loop(self):
        """Recycle send descriptors as the NIC completes them.

        RDMA-path descriptors reference the staging region rather than
        the fragment pool; they are one-shot and simply dropped here.
        """
        while True:
            desc: Descriptor = yield self.vi.send_cq.wait()
            rdma_mem = getattr(self, "_rdma_send_mem", None)
            if rdma_mem is not None and desc.memory.handle_id == rdma_mem.handle_id:
                continue
            fluid_mem = self._fluid_region
            if fluid_mem is not None and desc.memory.handle_id == fluid_mem.handle_id:
                # Fluid-mode one-shot descriptors never came from the
                # fragment pool; drop them like the RDMA ones.
                continue
            desc.reset()
            ev = self._send_pool.put(desc)
            ev.defused = True

    # -- receive ----------------------------------------------------------------------

    def _rx_loop(self):
        """Reap receive completions, reassemble messages, return credits.

        Buffers are drained and reposted as the layer consumes each
        fragment (modeling an application actively in ``recv()``);
        credit-update frames are batched — flushed every quarter window
        or at a message boundary, whichever comes first — so a long
        stream costs one reverse frame per few fragments, not per
        fragment.  End-to-end pacing of a slow *application* is the
        runtime's job (DataCutter's acknowledgment protocol).
        """
        flush_at = max(1, self.stack.credits // 4)
        while True:
            desc: Descriptor = yield from self.vi.reap_recv()
            hdr = desc.immediate
            if not isinstance(hdr, (_FragmentHeader, _RdmaHeader)):  # pragma: no cover
                raise ProtocolError(f"bad SocketVIA fragment header {hdr!r}")
            self._rx_got += hdr.size
            payload = hdr.payload if isinstance(hdr, _RdmaHeader) else desc.payload
            # Recycle the buffer and account the credit.
            desc.reset()
            self.vi.post_recv(desc)
            # A fluid-mode message carries its sender's whole credit
            # claim in the header; grant it all back in one update.
            self._credits_pending += getattr(hdr, "credits", 1)
            if self._credits_pending >= flush_at or hdr.is_last:
                self.stack._send_credit_update(self, self._credits_pending)
                self._credits_pending = 0
            if hdr.kind == "fin":
                self._rx_got = 0
                self._deliver_eof()
                continue
            if hdr.is_last:
                if self._rx_got != hdr.total_size:
                    raise ProtocolError(
                        f"SocketVIA reassembly mismatch: {self._rx_got} != "
                        f"{hdr.total_size}"
                    )
                self._rx_got = 0
                msg = Message(
                    size=hdr.total_size,
                    payload=payload,
                    kind=hdr.kind,
                    sent_at=hdr.sent_at,
                )
                msg.msg_id = hdr.msg_id
                self._deliver(msg)

    # -- close -----------------------------------------------------------------------

    def _do_close(self) -> None:
        # An orderly close: a zero-byte "fin"-kind message marks EOS.
        # Sending needs a credit; if none are available the close marker
        # is best-effort deferred to the stack's close daemon.
        self.stack._close_async(self)

    def __repr__(self) -> str:  # pragma: no cover
        vid = self.vi.vi_id if self.vi else None
        return f"<SocketViaSocket vi={vid} credits={self._credits.level}>"


class SocketViaStack(StackBase):
    """Per-host SocketVIA library instance bound to one switch fabric.

    A :class:`~repro.transport.base.StackBase` whose wire plumbing is
    owned by its :class:`~repro.via.nic.ViaNic`: data and credit frames
    ride VIA, only control datagrams flow through the shared rx daemon
    (fed by a frame handler rather than the port demux).
    """

    tag = "socketvia"
    socket_cls = SocketViaSocket

    def __init__(
        self,
        host: Host,
        switch: Switch,
        model: ProtocolCostModel = SOCKETVIA_CLAN,
        credits: int = DEFAULT_CREDITS,
        rdma_threshold: int = None,
        rdma_region_bytes: int = 256 * 1024,
        retry=None,
        connect_timeout: Optional[float] = None,
    ) -> None:
        """``rdma_threshold``: when set, messages of at least that many
        bytes travel as RDMA Writes with notify (the paper's future-work
        push model) instead of credit-window fragments; smaller messages
        keep the fragment path.  ``rdma_region_bytes`` sizes the
        per-connection landing region (and the largest single write)."""
        if credits < 1:
            raise ValueError("need at least one credit")
        if rdma_threshold is not None and rdma_threshold < 1:
            raise ValueError("rdma_threshold must be positive")
        self.credits = int(credits)
        self.rdma_threshold = rdma_threshold
        self.rdma_region_bytes = int(rdma_region_bytes)
        super().__init__(host, switch, model, consume_port=False,
                         retry=retry, connect_timeout=connect_timeout)
        self.nic = ViaNic(host, switch, model=model, tag=f"sv.{model.name}")
        self.nic.register_frame_handler(_CreditFrame, self._on_credit_frame)
        # Control datagrams arrive as VIA frames but take the shared
        # serialized rx path (charge host cost, route by endpoint id).
        self.nic.register_frame_handler(ControlDatagram, self._enqueue_rx)

    # -- wire plumbing (delegated to the VIA NIC) ----------------------------------------

    @property
    def wire_tag(self) -> str:
        return self.nic.tag

    def _charge_send(self, nbytes: Optional[int]) -> Generator:
        """User-level send cost on the host CPU (no kernel involved)."""
        yield from self.host.cpu.use(self.model.host_send_time(nbytes or 0))

    def _charge_rx(self, pkt: Any) -> Generator:
        """User-level receive cost for a control frame."""
        yield from self.host.cpu.use(self.model.host_recv_time(pkt.size))

    def _control_route(self, sock: SocketViaSocket):
        """Control datagrams address the peer's VI id."""
        vi = sock.vi
        return vi.peer_host, vi.peer_vi

    # -- connection setup (VIA dialog instead of the shared handshake) -------------------

    def listen(self, port: int) -> ListenerSocket:
        """Bind a listener; VIA discriminator = port number."""
        listener = super().listen(port)
        via_listener = self.nic.listen(port)
        self.sim.process(
            self._accept_loop(listener, via_listener),
            name=f"{self.host.name}.sv.accept.{port}",
        )
        return listener

    def _accept_loop(self, listener: ListenerSocket, via_listener):
        while not listener.closed:
            vi = yield from via_listener.wait_connection()
            sock = self.socket()
            sock.connected = True
            sock._bind_vi(vi)
            sock.local_address = listener.address
            sock.peer_address = (vi.peer_host, -1)
            listener._enqueue(sock)

    # -- credit plumbing ----------------------------------------------------------------

    def _send_credit_update(self, sock: SocketViaSocket, count: int) -> None:
        vi = sock.vi
        if vi is None or vi.peer_vi is None:
            return
        if self.tracer.enabled:
            self.tracer.emit(
                "via.credit", vi=vi.vi_id, count=count, dst=vi.peer_host
            )
        self._transmit(
            vi.peer_host, CREDIT_FRAME_BYTES,
            _CreditFrame(dst_vi=vi.peer_vi, count=count),
        )

    def _on_credit_frame(self, frame: _CreditFrame) -> None:
        sock = self._endpoints.get(frame.dst_vi)
        if sock is None:
            return
        ev = sock._credits.put(frame.count)
        ev.defused = True

    # -- close ------------------------------------------------------------------------------

    def _close_async(self, sock: SocketViaSocket) -> None:
        def closer():
            if sock.vi is not None:
                yield sock._credits.get(1)
                desc: Descriptor = yield sock._send_pool.get()
                desc.length = 0
                desc.immediate = _FragmentHeader(
                    msg_id=-1, kind="fin", total_size=0, offset=0, size=0,
                    is_last=True, sent_at=self.sim.now,
                )
                yield from sock.vi.post_send(desc)

        self.sim.process(closer(), name=f"{self.host.name}.sv.close")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SocketViaStack host={self.host.name!r}>"
