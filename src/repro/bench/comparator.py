"""Diff a benchmark run against a committed baseline.

The simulator is deterministic, so a healthy comparison is an exact
match; the tolerance bands exist to absorb cross-platform float
wiggle and to let users loosen the gate deliberately.  Classification
per metric:

* ``pass`` — relative delta within ``rel_warn``;
* ``warn`` — within ``rel_fail`` (reported, exit code 0);
* ``fail`` — beyond ``rel_fail``, a structural mismatch (shape,
  missing anchor, claim regression), or a value appearing/disappearing.

Anchor metrics and claims gate first — they are the paper's headline
numbers — then every numeric table cell is checked, so a regression
anywhere in a curve is caught even when the anchors survive.

**Wall-clock metrics are the exception**: any metric named ``wall_s``,
``wall_time_s`` or ``events_per_sec`` (table columns, anchors, and the
record-level ``wall_time_s``) measures the *host*, not the simulation,
so it can never fail a comparison — drift beyond 25% warns, which CI
surfaces as an annotation instead of a red build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bench import baselines
from repro.bench.records import fmt
from repro.bench.schema import BenchRecord

__all__ = ["Tolerance", "MetricDiff", "Comparison", "compare_records", "compare_dirs"]

_ORDER = {"pass": 0, "warn": 1, "fail": 2}

#: Metric names (the last ``.``/``:`` component) that measure host
#: wall-clock rather than simulated results.  The ``serial_s`` /
#: ``parallel_s`` / ``warm_s`` timings and the speedups derived from
#: them come from the sweep meta-benchmark (``bench run sweep``).
_WALL_METRICS = frozenset({
    "wall_s", "wall_time_s", "events_per_sec",
    "serial_s", "parallel_s", "warm_s", "single_s",
    "speedup_parallel", "speedup_cache", "speedup_calendar",
})

#: Relative drift a wall-clock metric may show before warning.
WALL_REL_WARN = 0.25


def _is_wall_metric(name: str) -> bool:
    tail = name.replace(":", ".").rsplit(".", 1)[-1]
    return tail in _WALL_METRICS


def _classify_wall(baseline: Optional[float], new: Optional[float]) -> str:
    """pass/warn for a host-timing pair — never ``fail``."""
    if baseline == new:
        return "pass"
    if baseline is None or new is None or baseline == 0:
        return "warn"
    rel = abs(new - baseline) / abs(baseline)
    return "pass" if rel <= WALL_REL_WARN else "warn"


@dataclass(frozen=True)
class Tolerance:
    """Relative tolerance bands for numeric metrics."""

    rel_warn: float = 0.01
    rel_fail: float = 0.05

    def classify(self, baseline: Optional[float], new: Optional[float]) -> str:
        """pass/warn/fail for one pair of values (None = drop-out)."""
        if baseline is None and new is None:
            return "pass"
        if baseline is None or new is None:
            return "fail"  # a drop-out appeared or vanished
        if baseline == new:
            return "pass"
        if baseline == 0:
            return "fail"
        rel = abs(new - baseline) / abs(baseline)
        if rel <= self.rel_warn:
            return "pass"
        if rel <= self.rel_fail:
            return "warn"
        return "fail"


@dataclass(frozen=True)
class MetricDiff:
    """One compared metric: where it lives, both values, the verdict."""

    metric: str
    baseline: Optional[float]
    new: Optional[float]
    status: str

    @property
    def rel_delta(self) -> Optional[float]:
        if self.baseline in (None, 0) or self.new is None:
            return None
        return (self.new - self.baseline) / abs(self.baseline)

    def render(self) -> str:
        delta = self.rel_delta
        pct = f"{delta:+.2%}" if delta is not None else "n/a"
        return (f"  [{self.status.upper():4}] {self.metric}: "
                f"{fmt(self.baseline)} -> {fmt(self.new)} ({pct})")


@dataclass
class Comparison:
    """Outcome of comparing one experiment against its baseline."""

    experiment: str
    diffs: List[MetricDiff] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)  # structural failures

    @property
    def status(self) -> str:
        worst = "fail" if self.problems else "pass"
        if not self.problems:
            for d in self.diffs:
                if _ORDER[d.status] > _ORDER[worst]:
                    worst = d.status
        return worst

    @property
    def counts(self) -> dict:
        c = {"pass": 0, "warn": 0, "fail": len(self.problems)}
        for d in self.diffs:
            c[d.status] += 1
        return c

    def render(self, verbose: bool = False) -> str:
        c = self.counts
        lines = [f"{self.experiment}: {self.status.upper()} "
                 f"({c['pass']} pass, {c['warn']} warn, {c['fail']} fail)"]
        for p in self.problems:
            lines.append(f"  [FAIL] {p}")
        for d in self.diffs:
            if verbose or d.status != "pass":
                lines.append(d.render())
        return "\n".join(lines)


def compare_records(
    new: BenchRecord,
    baseline: BenchRecord,
    tol: Tolerance = Tolerance(),
) -> Comparison:
    """Compare a fresh run against the committed baseline record."""
    comp = Comparison(new.experiment)

    if new.schema_version != baseline.schema_version:
        comp.problems.append(
            f"schema version changed: baseline v{baseline.schema_version} "
            f"vs run v{new.schema_version}")
        return comp
    if new.quick != baseline.quick:
        comp.problems.append(
            f"axis mismatch: baseline is a {'quick' if baseline.quick else 'full'} "
            f"run, this is a {'quick' if new.quick else 'full'} run "
            "(rerun with matching --quick, or refresh the baseline)")
        return comp
    if (new.sim_mode is not None and baseline.sim_mode is not None
            and new.sim_mode != baseline.sim_mode):
        comp.problems.append(
            f"simulation-mode mismatch: baseline ran {baseline.sim_mode}, "
            f"this run {new.sim_mode} (rerun with matching --mode, or "
            "refresh the baseline)")
        return comp

    # Host timing: warn-only, both at record level and below.
    comp.diffs.append(MetricDiff(
        "record:wall_time_s", baseline.wall_time_s, new.wall_time_s,
        _classify_wall(baseline.wall_time_s, new.wall_time_s)))
    if (baseline.events_processed is not None
            and new.events_processed is not None):
        # Deterministic cost counter (schema v2): gated like any metric.
        comp.diffs.append(MetricDiff(
            "record:events_processed",
            float(baseline.events_processed), float(new.events_processed),
            tol.classify(float(baseline.events_processed),
                         float(new.events_processed))))

    # Anchors: the calibrated headline metrics.
    base_anchors = {a["key"]: a for a in baseline.anchors}
    new_anchors = {a["key"]: a for a in new.anchors}
    for key in sorted(base_anchors.keys() | new_anchors.keys()):
        if key not in new_anchors:
            comp.problems.append(f"anchor {key!r} vanished from the run")
            continue
        if key not in base_anchors:
            comp.problems.append(f"anchor {key!r} has no committed baseline")
            continue
        bval = base_anchors[key]["measured"]
        nval = new_anchors[key]["measured"]
        comp.diffs.append(MetricDiff(
            f"anchor:{key}", bval, nval,
            _classify_wall(bval, nval) if _is_wall_metric(key)
            else tol.classify(bval, nval)))
        if not new_anchors[key]["ok"] and base_anchors[key]["ok"]:
            comp.problems.append(
                f"anchor {key!r} fell outside its paper tolerance "
                f"(paper {fmt(new_anchors[key]['paper'])}, "
                f"measured {fmt(new_anchors[key]['measured'])})")

    # Claims: structural statements must not regress.
    base_claims = {c["key"]: c["passed"] for c in baseline.claims}
    for c in new.claims:
        was = base_claims.get(c["key"])
        if was is None:
            continue
        if was and not c["passed"]:
            comp.problems.append(f"claim regressed: {c['description']}")
        elif not was and c["passed"]:
            comp.diffs.append(MetricDiff(
                f"claim:{c['key']} (now passes; refresh baseline?)",
                0.0, 1.0, "warn"))

    # Every numeric table cell.
    for panel in sorted(baseline.tables.keys() | new.tables.keys()):
        if panel not in new.tables:
            comp.problems.append(f"panel {panel!r} missing from the run")
            continue
        if panel not in baseline.tables:
            comp.problems.append(f"panel {panel!r} has no committed baseline")
            continue
        bt, nt = baseline.tables[panel], new.tables[panel]
        if bt["columns"] != nt["columns"] or len(bt["rows"]) != len(nt["rows"]):
            comp.problems.append(
                f"panel {panel!r} shape changed: "
                f"{len(bt['rows'])}x{len(bt['columns'])} -> "
                f"{len(nt['rows'])}x{len(nt['columns'])}")
            continue
        for i, (brow, nrow) in enumerate(zip(bt["rows"], nt["rows"])):
            for col, bval, nval in zip(bt["columns"], brow, nrow):
                if isinstance(bval, str) or isinstance(nval, str):
                    if bval != nval:
                        comp.problems.append(
                            f"{panel}[{i}].{col}: {bval!r} != {nval!r}")
                    continue
                comp.diffs.append(MetricDiff(
                    f"{panel}[{i}].{col}", bval, nval,
                    _classify_wall(bval, nval) if col in _WALL_METRICS
                    else tol.classify(bval, nval)))
    return comp


def compare_dirs(
    results: Optional[str] = None,
    baseline: Optional[str] = None,
    experiments: Optional[List[str]] = None,
    tol: Tolerance = Tolerance(),
) -> List[Comparison]:
    """Compare every (or the named) result record against its baseline.

    Records present only in the results directory fail (no baseline to
    gate against); baselines without a fresh run are skipped — CI runs
    a subset of the suites.
    """
    results_dir = baselines.results_dir(results)
    baseline_dir = baselines.baseline_dir(baseline)
    found = baselines.discover(results_dir)
    names = sorted(found) if experiments is None else experiments
    comparisons = []
    for exp in names:
        comp = Comparison(exp)
        if exp not in found:
            comp.problems.append(f"no run output in {results_dir!r} "
                                 "(did `bench run` succeed?)")
            comparisons.append(comp)
            continue
        try:
            base = baselines.load_record(baseline_dir, exp)
        except FileNotFoundError:
            comp.problems.append(
                f"no committed baseline in {baseline_dir!r}; create one with "
                f"`python -m repro bench run {exp} --update-baseline`")
            comparisons.append(comp)
            continue
        comparisons.append(
            compare_records(BenchRecord.load(found[exp]), base, tol))
    return comparisons
