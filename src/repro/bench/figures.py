"""Per-figure experiment drivers.

One function per table/figure in the paper's evaluation (Section 5),
each returning an :class:`~repro.bench.records.ExperimentTable` whose
rows/series mirror what the paper plots.  The benchmark suite under
``benchmarks/`` calls these; so can users, directly::

    from repro.bench import figures
    print(figures.fig4a_latency().render())

Every driver accepts scale parameters so CI can run a quick variant;
the defaults regenerate the full figures.  All runs are deterministic.

Sweep decomposition
-------------------
Each figure is a sweep of *independent* simulation points, so next to
every serial driver lives a ``*_points()`` decomposition returning a
:class:`~repro.bench.executor.PointPlan`: a list of pure
:class:`~repro.bench.executor.Point` work items (the entries of
:data:`POINT_FNS`, invoked by name so they pickle across a process
pool and key a content-addressed result cache) plus a merge that
reassembles the figure table **row-for-row identical** to the serial
loop.  Table titles, columns, and notes are built by shared helpers so
the two paths cannot drift; ``tests/test_bench_executor.py`` holds
every plan to bit-identity against its serial driver.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.apps.dataset import PAPER_IMAGE_BYTES
from repro.apps.loadbalance import (
    LoadBalanceConfig,
    paper_block_size,
    run_loadbalance,
)
from repro.apps.planning import (
    PipelinePlan,
    plan_block_for_latency,
    plan_block_for_rate,
)
from repro.apps.queries import mixed_query_workload, steady_rate_workload
from repro.apps.vizserver import (
    VizServerConfig,
    measure_max_update_rate,
    run_vizserver,
)
from repro.bench.executor import Point, PointPlan
from repro.bench.microbench import (
    ping_pong_latency,
    streaming_bandwidth,
    via_ping_pong_latency,
    via_streaming_bandwidth,
)
from repro.bench.records import ExperimentTable, ratio
from repro.bench.servebench import serve_cell, serve_scale_cell
from repro.sim.partition import serve_shard_cell
from repro.bench.tailsbench import tails_cell
from repro.bench.wancachebench import wcb_cell, wcq_cell
from repro.cluster.hetero import RandomSlowdown, StaticSlowdown
from repro.net.calibration import get_model
from repro.sim.units import bytes_per_sec_to_mbps, to_usec, usec

__all__ = [
    "fig2_message_size_economics",
    "fig4a_latency",
    "fig4b_bandwidth",
    "fig7_update_rate_guarantee",
    "fig8_latency_guarantee",
    "fig9_query_mix",
    "fig10_rr_reaction",
    "fig11_dd_heterogeneity",
    "chaos8_update_rate",
    "chaos11_crash_recovery",
    "fig2_points",
    "fig4a_points",
    "fig4b_points",
    "fig7_points",
    "fig8_points",
    "fig9_points",
    "fig10_points",
    "fig11_points",
    "chaos8_points",
    "chaos11_points",
    "POINT_FNS",
    "MICRO_SIZES_LATENCY",
    "MICRO_SIZES_BANDWIDTH",
    "FIG7_RATES",
    "FIG8_BOUNDS_US",
    "FIG9_FRACTIONS",
    "FIG10_FACTORS",
    "FIG11_PROBABILITIES",
    "FIG11_FACTORS",
    "CHAOS8_BOUNDS_US",
    "CHAOS11_PROBABILITIES",
    "CHAOS11_FACTOR",
]

#: Figure 4(a) x-axis: 4 bytes .. 4 KB.
MICRO_SIZES_LATENCY = [4, 16, 64, 256, 1024, 2048, 4096]
#: Figure 4(b) x-axis: 4 bytes .. 64 KB.
MICRO_SIZES_BANDWIDTH = [64, 256, 1024, 2048, 4096, 8192, 16384, 32768, 65536]
#: Figure 7 x-axis (updates per second).
FIG7_RATES = [4.0, 3.75, 3.5, 3.25, 3.0, 2.75, 2.5, 2.25, 2.0]
#: Figure 8 x-axis (partial-update latency guarantee, microseconds).
FIG8_BOUNDS_US = [1000, 900, 800, 700, 600, 500, 400, 300, 200, 100]
#: Figure 9 x-axis (fraction of complete-update queries).
FIG9_FRACTIONS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
#: Figure 10 x-axis (factor of heterogeneity).
FIG10_FACTORS = [2, 4, 10]
#: Figure 11 axes.
FIG11_PROBABILITIES = [0.1, 0.3, 0.5, 0.7, 0.9]
FIG11_FACTORS = [2, 4, 8]

#: The slow worker both load-balance figures perturb.
_SLOW_INDEX = 2


# ---------------------------------------------------------------------------
# Figure 2: the message-size economics behind data repartitioning
# ---------------------------------------------------------------------------


_FIG2_ROW_LABELS = [
    "U1 (kernel sockets size for B, bytes)",
    "U2 (high-perf substrate size for B, bytes)",
    "L1 = kernel latency at U1 (us)",
    "L2 = substrate latency at U1 (us)",
    "L3 = substrate latency at U2 (us)",
]

_FIG2_NOTE = (
    "direct improvement L1->L2 (faster wire at the same chunking), "
    "indirect improvement L2->L3 (repartitioning to U2)"
)


def _fig2_table(required_bandwidth_mbps: float) -> ExperimentTable:
    return ExperimentTable(
        "fig2",
        f"Message-size economics at required bandwidth B = "
        f"{required_bandwidth_mbps:.0f} Mbps",
        ["quantity", "value"],
    )


def fig2_economics(required_bandwidth_mbps: float) -> List[float]:
    """Point: the five Figure-2 quantities ``[U1, U2, L1, L2, L3]``."""
    from repro.sim.units import mbps_to_bytes_per_sec

    tcp = get_model("tcp")
    sv = get_model("socketvia")
    target = mbps_to_bytes_per_sec(required_bandwidth_mbps)
    u1 = tcp.size_for_bandwidth(target)
    u2 = sv.size_for_bandwidth(target)
    return [
        int(u1),
        int(u2),
        float(to_usec(tcp.des_message_latency(u1))),
        float(to_usec(sv.des_message_latency(u1))),
        float(to_usec(sv.des_message_latency(u2))),
    ]


def _fig2_merge(required_bandwidth_mbps: float, values: List[float]) -> ExperimentTable:
    table = _fig2_table(required_bandwidth_mbps)
    for label, value in zip(_FIG2_ROW_LABELS, values):
        table.add_row(label, value)
    table.add_note(_FIG2_NOTE)
    return table


def fig2_message_size_economics(required_bandwidth_mbps: float = 450.0) -> ExperimentTable:
    """Figure 2 (conceptual, here with calibrated numbers): the message
    sizes U1 (kernel sockets) and U2 (high-performance substrate) at
    which each transport attains a required bandwidth B, and the
    latency improvements L1 -> L2 (same size, faster substrate) -> L3
    (substrate at its own smaller size).

    A closed-form model evaluation with no sweep axes, so there is no
    quick variant: quick and full runs are the same table (see the
    exemption note in ``repro.bench.suites``).
    """
    return _fig2_merge(required_bandwidth_mbps,
                       fig2_economics(required_bandwidth_mbps))


def fig2_points(required_bandwidth_mbps: float = 450.0) -> PointPlan:
    """Figure 2 as a single-point plan (one model evaluation)."""
    points = [Point("2", "fig2_economics",
                    {"required_bandwidth_mbps": float(required_bandwidth_mbps)})]
    return PointPlan(
        "2", points,
        lambda values: _fig2_merge(required_bandwidth_mbps, values[0]))


# ---------------------------------------------------------------------------
# Figure 4: micro-benchmarks
# ---------------------------------------------------------------------------


_FIG4A_NOTE = "paper: SocketVIA 9.5 us, ~5x below TCP"
_FIG4B_NOTE = "paper peaks: VIA 795, SocketVIA 763, TCP 510 Mbps"


def _fig4a_table() -> ExperimentTable:
    return ExperimentTable(
        "fig4a",
        "Micro-benchmark latency (us) vs message size",
        ["msg_bytes", "VIA", "SocketVIA", "TCP"],
    )


def _fig4b_table() -> ExperimentTable:
    return ExperimentTable(
        "fig4b",
        "Micro-benchmark bandwidth (Mbps) vs message size",
        ["msg_bytes", "VIA", "SocketVIA", "TCP"],
    )


def fig4a_size(size: int) -> List[float]:
    """Point: one-way latency (us) of the three transports at *size*."""
    return [
        float(to_usec(via_ping_pong_latency(size))),
        float(to_usec(ping_pong_latency("socketvia", size))),
        float(to_usec(ping_pong_latency("tcp", size))),
    ]


def fig4b_size(size: int) -> List[float]:
    """Point: streaming bandwidth (Mbps) of the three transports."""
    return [
        float(bytes_per_sec_to_mbps(via_streaming_bandwidth(size))),
        float(bytes_per_sec_to_mbps(streaming_bandwidth("socketvia", size))),
        float(bytes_per_sec_to_mbps(streaming_bandwidth("tcp", size))),
    ]


def fig4a_latency(sizes=None) -> ExperimentTable:
    """Figure 4(a): one-way latency vs message size, three transports."""
    sizes = sizes or MICRO_SIZES_LATENCY
    table = _fig4a_table()
    for size in sizes:
        table.add_row(size, *fig4a_size(size))
    table.add_note(_FIG4A_NOTE)
    return table


def fig4b_bandwidth(sizes=None) -> ExperimentTable:
    """Figure 4(b): streaming bandwidth (Mbps) vs message size."""
    sizes = sizes or MICRO_SIZES_BANDWIDTH
    table = _fig4b_table()
    for size in sizes:
        table.add_row(size, *fig4b_size(size))
    table.add_note(_FIG4B_NOTE)
    return table


def _fig4_points(figure: str, fn: str, sizes, table_fn, note) -> PointPlan:
    sizes = [int(s) for s in sizes]
    points = [Point(figure, fn, {"size": s}) for s in sizes]

    def merge(values: List[Any]) -> ExperimentTable:
        table = table_fn()
        for size, cells in zip(sizes, values):
            table.add_row(size, *cells)
        table.add_note(note)
        return table

    return PointPlan(figure, points, merge)


def fig4a_points(sizes=None) -> PointPlan:
    """Figure 4(a) as one point per message size."""
    return _fig4_points("4a", "fig4a_size", sizes or MICRO_SIZES_LATENCY,
                        _fig4a_table, _FIG4A_NOTE)


def fig4b_points(sizes=None) -> PointPlan:
    """Figure 4(b) as one point per message size."""
    return _fig4_points("4b", "fig4b_size", sizes or MICRO_SIZES_BANDWIDTH,
                        _fig4b_table, _FIG4B_NOTE)


# ---------------------------------------------------------------------------
# Figure 7: average partial-update latency under update-rate guarantees
# ---------------------------------------------------------------------------


def _fig7_point(protocol: str, block: int, rate: float, compute: float, frames: int):
    cfg = VizServerConfig(
        protocol=protocol, block_bytes=block, compute_ns_per_byte=compute
    )
    workload = steady_rate_workload(
        cfg.dataset(), rate=rate, duration=frames / rate + 1e-3, partial_every=1
    )
    res = run_vizserver(cfg, workload)
    return (
        to_usec(res.latency("partial").mean),
        res.achieved_update_rate,
    )


def _fig7_table(compute_ns_per_byte: float) -> ExperimentTable:
    variant = "b (18 ns/B compute)" if compute_ns_per_byte else "a (no compute)"
    return ExperimentTable(
        f"fig7{'b' if compute_ns_per_byte else 'a'}",
        f"Avg partial-update latency (us) with update/s guarantees — {variant}",
        ["updates_per_sec", "tcp_block", "TCP", "SocketVIA", "dr_block",
         "SocketVIA_DR", "tcp_rate_achieved", "dr_rate_achieved"],
    )


def _fig7_add_notes(table: ExperimentTable) -> ExperimentTable:
    improvements = [
        (ratio(t, s), ratio(t, d))
        for t, s, d in zip(table.column("TCP"), table.column("SocketVIA"),
                           table.column("SocketVIA_DR"))
        if t is not None
    ]
    if improvements:
        best_no_dr = max((r for r, _ in improvements if r), default=None)
        best_dr = max((r for _, r in improvements if r), default=None)
        table.add_note(
            f"best improvement: {best_no_dr:.1f}x without repartitioning, "
            f"{best_dr:.1f}x with (paper: >3.5x / >10x for (a), >4x / >12x for (b))"
        )
    table.add_note("'--' = no block size meets the guarantee (drop-out)")
    return table


def fig7_rate(rate: float, compute_ns_per_byte: float, frames: int) -> List[Any]:
    """Point: one Figure-7 row (both transports + repartitioning) at *rate*."""
    tcp_plan = PipelinePlan(model=get_model("tcp"),
                            compute_ns_per_byte=compute_ns_per_byte)
    sv_plan = PipelinePlan(model=get_model("socketvia"),
                           compute_ns_per_byte=compute_ns_per_byte)
    b_tcp = plan_block_for_rate(tcp_plan, rate)
    b_sv = plan_block_for_rate(sv_plan, rate)
    tcp_lat = sv_lat = dr_lat = tcp_rate = dr_rate = None
    if b_tcp is not None:
        tcp_lat, tcp_rate = _fig7_point("tcp", b_tcp, rate,
                                        compute_ns_per_byte, frames)
        sv_lat, _ = _fig7_point("socketvia", b_tcp, rate,
                                compute_ns_per_byte, frames)
    if b_sv is not None:
        dr_lat, dr_rate = _fig7_point("socketvia", b_sv, rate,
                                      compute_ns_per_byte, frames)

    def _f(x):
        return None if x is None else float(x)

    return [b_tcp, _f(tcp_lat), _f(sv_lat), b_sv, _f(dr_lat),
            _f(tcp_rate), _f(dr_rate)]


def fig7_update_rate_guarantee(
    compute_ns_per_byte: float = 0.0,
    rates=None,
    frames: int = 3,
) -> ExperimentTable:
    """Figure 7: partial-update latency while guaranteeing a full-update
    rate.  Series: TCP (blocks planned for TCP), SocketVIA at TCP's
    blocks, SocketVIA with Data Repartitioning (its own blocks).

    ``compute_ns_per_byte=0`` reproduces 7(a); 18.0 reproduces 7(b).
    """
    rates = rates or FIG7_RATES
    table = _fig7_table(compute_ns_per_byte)
    for rate in rates:
        table.add_row(rate, *fig7_rate(rate, compute_ns_per_byte, frames))
    return _fig7_add_notes(table)


def fig7_points(
    compute_ns_per_byte: float = 0.0,
    rates=None,
    frames: int = 3,
) -> PointPlan:
    """Figure 7 as one point per guaranteed update rate."""
    rates = [float(r) for r in (rates or FIG7_RATES)]
    figure = "7b" if compute_ns_per_byte else "7a"
    points = [
        Point(figure, "fig7_rate",
              {"rate": rate, "compute_ns_per_byte": float(compute_ns_per_byte),
               "frames": int(frames)})
        for rate in rates
    ]

    def merge(values: List[Any]) -> ExperimentTable:
        table = _fig7_table(compute_ns_per_byte)
        for rate, cells in zip(rates, values):
            table.add_row(rate, *cells)
        return _fig7_add_notes(table)

    return PointPlan(figure, points, merge)


# ---------------------------------------------------------------------------
# Figure 8: updates/s under partial-update latency guarantees
# ---------------------------------------------------------------------------


_FIG8_NOTE = (
    "paper: TCP drops out at the 100 us guarantee; SocketVIA stays near peak"
)


def _fig8_table(compute_ns_per_byte: float) -> ExperimentTable:
    variant = "b (18 ns/B compute)" if compute_ns_per_byte else "a (no compute)"
    return ExperimentTable(
        f"fig8{'b' if compute_ns_per_byte else 'a'}",
        f"Updates/s with latency guarantees — {variant}",
        ["latency_us", "tcp_block", "TCP", "SocketVIA", "dr_block", "SocketVIA_DR"],
    )


def _fig8_blocks(compute_ns_per_byte: float, bounds_us) -> List[tuple]:
    """Per-bound planned blocks ``(bound, b_tcp, b_sv)`` — analytic."""
    tcp_plan = PipelinePlan(model=get_model("tcp"),
                            compute_ns_per_byte=compute_ns_per_byte)
    sv_plan = PipelinePlan(model=get_model("socketvia"),
                           compute_ns_per_byte=compute_ns_per_byte)
    return [
        (bound,
         plan_block_for_latency(tcp_plan, usec(bound)),
         plan_block_for_latency(sv_plan, usec(bound)))
        for bound in bounds_us
    ]


def fig8_rate(protocol: str, block: int, compute_ns_per_byte: float,
              frames: int) -> float:
    """Point: max sustainable update rate of *protocol* at *block*."""
    cfg = VizServerConfig(
        protocol=protocol, block_bytes=block,
        compute_ns_per_byte=compute_ns_per_byte,
    )
    return float(measure_max_update_rate(cfg, frames=frames))


def fig8_latency_guarantee(
    compute_ns_per_byte: float = 0.0,
    bounds_us=None,
    frames: int = 3,
) -> ExperimentTable:
    """Figure 8: maximum full updates/s while a partial-update chunk
    fetch stays under the latency guarantee.  Series as Figure 7."""
    bounds_us = bounds_us or FIG8_BOUNDS_US
    table = _fig8_table(compute_ns_per_byte)

    cache = {}

    def rate_for(protocol, block):
        key = (protocol, block)
        if key not in cache:
            cache[key] = fig8_rate(protocol, block, compute_ns_per_byte, frames)
        return cache[key]

    for bound, b_tcp, b_sv in _fig8_blocks(compute_ns_per_byte, bounds_us):
        tcp_rate = rate_for("tcp", b_tcp) if b_tcp else None
        sv_rate = rate_for("socketvia", b_tcp) if b_tcp else None
        dr_rate = rate_for("socketvia", b_sv) if b_sv else None
        table.add_row(bound, b_tcp, tcp_rate, sv_rate, b_sv, dr_rate)
    table.add_note(_FIG8_NOTE)
    return table


def fig8_points(
    compute_ns_per_byte: float = 0.0,
    bounds_us=None,
    frames: int = 3,
) -> PointPlan:
    """Figure 8 as one point per **unique** (protocol, block) pair.

    Planning is analytic and happens here; different latency bounds
    that plan the same block share one measurement point — the same
    memoization the serial driver's ``rate_for`` cache performs.
    """
    bounds_us = [int(b) for b in (bounds_us or FIG8_BOUNDS_US)]
    figure = "8b" if compute_ns_per_byte else "8a"
    blocks = _fig8_blocks(compute_ns_per_byte, bounds_us)
    pairs: List[tuple] = []
    for _, b_tcp, b_sv in blocks:
        for protocol, block in (("tcp", b_tcp), ("socketvia", b_tcp),
                                ("socketvia", b_sv)):
            if block and (protocol, block) not in pairs:
                pairs.append((protocol, block))
    points = [
        Point(figure, "fig8_rate",
              {"protocol": protocol, "block": int(block),
               "compute_ns_per_byte": float(compute_ns_per_byte),
               "frames": int(frames)})
        for protocol, block in pairs
    ]

    def merge(values: List[Any]) -> ExperimentTable:
        rate = dict(zip(pairs, values))
        table = _fig8_table(compute_ns_per_byte)
        for bound, b_tcp, b_sv in blocks:
            table.add_row(
                bound, b_tcp,
                rate[("tcp", b_tcp)] if b_tcp else None,
                rate[("socketvia", b_tcp)] if b_tcp else None,
                b_sv,
                rate[("socketvia", b_sv)] if b_sv else None)
        table.add_note(_FIG8_NOTE)
        return table

    return PointPlan(figure, points, merge)


# ---------------------------------------------------------------------------
# Figure 9: mixed query types vs average response time
# ---------------------------------------------------------------------------


_FIG9_NOTE = (
    "paper (150 ms budget, 64 partitions): TCP tolerates ~60% complete "
    "queries, SocketVIA ~90%"
)


def _fig9_table(compute_ns_per_byte: float, partitions) -> ExperimentTable:
    variant = "b (18 ns/B compute)" if compute_ns_per_byte else "a (no compute)"
    columns = ["fraction_complete"]
    for proto in ("SocketVIA", "TCP"):
        for parts in partitions:
            label = "none" if parts == 1 else str(parts)
            columns.append(f"{proto}_p{label}")
    return ExperimentTable(
        f"fig9{'b' if compute_ns_per_byte else 'a'}",
        f"Avg response time (ms) vs fraction of complete updates — {variant}",
        columns,
    )


def fig9_cell(fraction: float, protocol: str, partitions: int,
              compute_ns_per_byte: float, n_queries: int, seed: int) -> float:
    """Point: mean response time (ms) of one (mix, protocol, partitioning)."""
    block = PAPER_IMAGE_BYTES // partitions
    cfg = VizServerConfig(
        protocol=protocol,
        block_bytes=block,
        compute_ns_per_byte=compute_ns_per_byte,
        closed_loop=True,
    )
    rng = np.random.default_rng(seed)
    workload = mixed_query_workload(
        cfg.dataset(), n_queries, fraction, rng, exact=True
    )
    res = run_vizserver(cfg, workload)
    return float(res.latency("any").mean * 1e3)


def fig9_query_mix(
    compute_ns_per_byte: float = 0.0,
    fractions=None,
    partitions=(1, 8, 64),
    n_queries: int = 10,
    seed: int = 31,
) -> ExperimentTable:
    """Figure 9: average query response time (ms) vs the fraction of
    complete-update queries, for several dataset partitionings.

    Partitioning 1 = "No Partitions" (every query fetches the whole
    16 MB image); zoom queries need 4 chunks when partitioned.
    """
    fractions = fractions or FIG9_FRACTIONS
    table = _fig9_table(compute_ns_per_byte, partitions)
    for frac in fractions:
        row = [frac]
        for proto in ("socketvia", "tcp"):
            for parts in partitions:
                row.append(fig9_cell(frac, proto, parts,
                                     compute_ns_per_byte, n_queries, seed))
        table.add_row(*row)
    table.add_note(_FIG9_NOTE)
    return table


def fig9_points(
    compute_ns_per_byte: float = 0.0,
    fractions=None,
    partitions=(1, 8, 64),
    n_queries: int = 10,
    seed: int = 31,
) -> PointPlan:
    """Figure 9 as one point per (mix fraction, protocol, partitioning)."""
    fractions = [float(f) for f in (fractions or FIG9_FRACTIONS)]
    partitions = tuple(int(p) for p in partitions)
    figure = "9b" if compute_ns_per_byte else "9a"
    points = [
        Point(figure, "fig9_cell",
              {"fraction": frac, "protocol": proto, "partitions": parts,
               "compute_ns_per_byte": float(compute_ns_per_byte),
               "n_queries": int(n_queries), "seed": int(seed)})
        for frac in fractions
        for proto in ("socketvia", "tcp")
        for parts in partitions
    ]
    per_row = 2 * len(partitions)

    def merge(values: List[Any]) -> ExperimentTable:
        table = _fig9_table(compute_ns_per_byte, partitions)
        for i, frac in enumerate(fractions):
            table.add_row(frac, *values[i * per_row:(i + 1) * per_row])
        table.add_note(_FIG9_NOTE)
        return table

    return PointPlan(figure, points, merge)


# ---------------------------------------------------------------------------
# Figure 10: round-robin reaction time vs heterogeneity factor
# ---------------------------------------------------------------------------


_FIG10_NOTE = "paper: SocketVIA reacts ~8x faster (16 KB vs 2 KB blocks)"


def _fig10_table() -> ExperimentTable:
    return ExperimentTable(
        "fig10",
        "Load-balancer reaction time (us) to heterogeneity — Round-Robin",
        ["factor", "SocketVIA", "TCP", "ratio_tcp_over_sv"],
    )


def fig10_cell(factor: int, protocol: str, total_bytes: int,
               compute_ns_per_byte: float) -> float:
    """Point: RR reaction time (us) of one (factor, protocol) pair."""
    cfg = LoadBalanceConfig(
        protocol=protocol,
        policy="rr",
        block_bytes=paper_block_size(protocol),
        total_bytes=total_bytes,
        compute_ns_per_byte=compute_ns_per_byte,
        slow_workers={_SLOW_INDEX: StaticSlowdown(factor)},
    )
    res = run_loadbalance(cfg)
    return float(to_usec(res.reaction_time(_SLOW_INDEX)))


def fig10_rr_reaction(
    factors=None,
    total_bytes: int = PAPER_IMAGE_BYTES // 2,
    compute_ns_per_byte: float = 90.0,
) -> ExperimentTable:
    """Figure 10: how long the RR balancer stays committed to a slow
    node, vs the factor of heterogeneity.  Blocks: 16 KB (TCP) / 2 KB
    (SocketVIA) — the perfect-pipelining sizes.

    Worker computation defaults to 90 ns/byte (the Figure 10/11 workers
    process each block several times — also the paper's slowdown
    emulation mechanism) so that both transports are compute-bound and
    the reaction time reflects block processing, not the balancer's own
    send path.
    """
    factors = factors or FIG10_FACTORS
    table = _fig10_table()
    for factor in factors:
        reactions = {
            proto: fig10_cell(factor, proto, total_bytes, compute_ns_per_byte)
            for proto in ("socketvia", "tcp")
        }
        table.add_row(
            factor,
            reactions["socketvia"],
            reactions["tcp"],
            ratio(reactions["tcp"], reactions["socketvia"]),
        )
    table.add_note(_FIG10_NOTE)
    return table


def fig10_points(
    factors=None,
    total_bytes: int = PAPER_IMAGE_BYTES // 2,
    compute_ns_per_byte: float = 90.0,
) -> PointPlan:
    """Figure 10 as one point per (factor, protocol) pair."""
    factors = [int(f) for f in (factors or FIG10_FACTORS)]
    points = [
        Point("10", "fig10_cell",
              {"factor": factor, "protocol": proto,
               "total_bytes": int(total_bytes),
               "compute_ns_per_byte": float(compute_ns_per_byte)})
        for factor in factors
        for proto in ("socketvia", "tcp")
    ]

    def merge(values: List[Any]) -> ExperimentTable:
        table = _fig10_table()
        for i, factor in enumerate(factors):
            sv, tcp = values[2 * i], values[2 * i + 1]
            table.add_row(factor, sv, tcp, ratio(tcp, sv))
        table.add_note(_FIG10_NOTE)
        return table

    return PointPlan("10", points, merge)


# ---------------------------------------------------------------------------
# Figure 11: demand-driven scheduling under dynamic slowdown
# ---------------------------------------------------------------------------


_FIG11_NOTE = (
    "paper: TCP tracks SocketVIA closely under DD; time rises with "
    "P(slow) and the heterogeneity factor"
)


def _fig11_table(factors) -> ExperimentTable:
    columns = ["prob_slow_pct"]
    for proto in ("SocketVIA", "TCP"):
        for f in factors:
            columns.append(f"{proto}({f})")
    return ExperimentTable(
        "fig11",
        "Execution time (us) under Demand-Driven scheduling, one dynamically slow node",
        columns,
    )


def fig11_cell(prob: float, factor: int, protocol: str, total_bytes: int,
               compute_ns_per_byte: float) -> float:
    """Point: DD execution time (us) with one dynamically slow node."""
    cfg = LoadBalanceConfig(
        protocol=protocol,
        policy="dd",
        block_bytes=paper_block_size(protocol),
        total_bytes=total_bytes,
        compute_ns_per_byte=compute_ns_per_byte,
        slow_workers={_SLOW_INDEX: RandomSlowdown(factor, prob)},
    )
    res = run_loadbalance(cfg)
    return float(to_usec(res.execution_time))


def fig11_dd_heterogeneity(
    probabilities=None,
    factors=None,
    total_bytes: int = PAPER_IMAGE_BYTES // 2,
    compute_ns_per_byte: float = 90.0,
) -> ExperimentTable:
    """Figure 11: execution time under demand-driven scheduling when one
    node is slow with a given probability per block.

    Defaults process half an image at 90 ns/byte (the workers do the
    visualization work repeatedly per block, see DESIGN.md) so that the
    system is compute-bound for both transports — the regime where the
    paper observes "application performance using TCP is close to that
    of SocketVIA".
    """
    probabilities = probabilities or FIG11_PROBABILITIES
    factors = factors or FIG11_FACTORS
    table = _fig11_table(factors)
    for prob in probabilities:
        row = [int(prob * 100)]
        for proto in ("socketvia", "tcp"):
            for factor in factors:
                row.append(fig11_cell(prob, factor, proto, total_bytes,
                                      compute_ns_per_byte))
        table.add_row(*row)
    table.add_note(_FIG11_NOTE)
    return table


def fig11_points(
    probabilities=None,
    factors=None,
    total_bytes: int = PAPER_IMAGE_BYTES // 2,
    compute_ns_per_byte: float = 90.0,
) -> PointPlan:
    """Figure 11 as one point per (probability, protocol, factor) cell."""
    probabilities = [float(p) for p in (probabilities or FIG11_PROBABILITIES)]
    factors = [int(f) for f in (factors or FIG11_FACTORS)]
    points = [
        Point("11", "fig11_cell",
              {"prob": prob, "factor": factor, "protocol": proto,
               "total_bytes": int(total_bytes),
               "compute_ns_per_byte": float(compute_ns_per_byte)})
        for prob in probabilities
        for proto in ("socketvia", "tcp")
        for factor in factors
    ]
    per_row = 2 * len(factors)

    def merge(values: List[Any]) -> ExperimentTable:
        table = _fig11_table(factors)
        for i, prob in enumerate(probabilities):
            table.add_row(int(prob * 100),
                          *values[i * per_row:(i + 1) * per_row])
        table.add_note(_FIG11_NOTE)
        return table

    return PointPlan("11", points, merge)


# ---------------------------------------------------------------------------
# Chaos suite: Figures 8 and 11 re-measured under calibrated fault plans
# ---------------------------------------------------------------------------
#
# Not a paper figure: the chaos panels re-run two representative
# experiments under the named fault plans in ``repro.faults.presets``
# and place faulted and fault-free legs side by side, so the committed
# baseline records how much performance fault injection costs and that
# the resilience machinery (graceful degradation, crash replay) keeps
# every run terminating.  Fault-free legs reuse the plain Figure 8/11
# point functions with identical params, so they share cache entries
# with the ``fig08``/``fig11`` suites; chaos legs carry their plan as a
# ``fault_plan`` param — the plan is part of the point's content, hence
# part of its cache key.


#: Chaos Figure 8 leg: latency bounds re-measured under chaos-fig8.
CHAOS8_BOUNDS_US = [1000, 400, 200]
#: Chaos Figure 11 leg: P(slow) axis, heterogeneity factor fixed at 4.
CHAOS11_PROBABILITIES = [0.1, 0.5, 0.9]
CHAOS11_FACTOR = 4

_CHAOS8_NOTE = (
    "chaos-fig8 plan: viz sink's cLAN receive side flaps 30 ms of every "
    "100 ms; clip host node04 computes 8x slower throughout (DD routes "
    "around it) — expect a bounded update-rate loss, not a collapse"
)
_CHAOS11_NOTE = (
    "chaos-fig11 plan: worker01 crashes at 10 ms and restarts at 30 ms; "
    "DD reroutes around the dead copy and its deferred blocks replay at "
    "restart — every block is still processed"
)


def _plan_dict(preset_name: str) -> Dict[str, Any]:
    from repro.faults import get_preset

    return get_preset(preset_name).to_dict()


def chaos8_rate(protocol: str, block: int, compute_ns_per_byte: float,
                frames: int, fault_plan: Dict[str, Any]) -> float:
    """Point: :func:`fig8_rate` measured under an injected fault plan."""
    from repro.faults import FaultPlan, injecting

    with injecting(FaultPlan.from_dict(fault_plan)):
        return fig8_rate(protocol, block, compute_ns_per_byte, frames)


def chaos11_cell(prob: float, factor: int, protocol: str, total_bytes: int,
                 compute_ns_per_byte: float,
                 fault_plan: Dict[str, Any]) -> List[float]:
    """Point: :func:`fig11_cell` under an injected fault plan.

    Returns ``[execution_time_us, crashed_share, peer_share]``:
    ``crashed_share`` is the fraction of all blocks the plan's crashed
    worker(s) processed, ``peer_share`` the per-worker average of the
    healthy workers that are neither crashed nor the figure's slow
    node.  Crashed and peer workers gain from worker-``_SLOW_INDEX``'s
    slowness symmetrically, so the crash shows as ``crashed_share <
    peer_share`` at every P(slow) — a comparison against the fair share
    1/n would drown in the slow-node effect on long runs.
    """
    from repro.faults import FaultPlan, injecting

    plan = FaultPlan.from_dict(fault_plan)
    cfg = LoadBalanceConfig(
        protocol=protocol,
        policy="dd",
        block_bytes=paper_block_size(protocol),
        total_bytes=total_bytes,
        compute_ns_per_byte=compute_ns_per_byte,
        slow_workers={_SLOW_INDEX: RandomSlowdown(factor, prob)},
    )
    with injecting(plan):
        res = run_loadbalance(cfg)
    crashed_idx = [
        int(name[len("worker"):])
        for name, hf in plan.hosts.items()
        if hf.crash_at is not None and name.startswith("worker")
    ]
    peer_idx = [
        i for i in range(len(res.sent_counts))
        if i not in crashed_idx and i != _SLOW_INDEX
    ]
    total = sum(res.sent_counts)
    crashed = sum(res.sent_counts[i] for i in crashed_idx)
    peer = sum(res.sent_counts[i] for i in peer_idx)
    return [
        float(to_usec(res.execution_time)),
        crashed / total if total else 0.0,
        peer / (len(peer_idx) * total) if total and peer_idx else 0.0,
    ]


def _chaos8_table() -> ExperimentTable:
    return ExperimentTable(
        "c8",
        "Figure 8 updates/s (18 ns/B) — fault-free vs the chaos-fig8 plan",
        ["latency_us", "tcp_block", "TCP", "TCP_chaos",
         "sv_block", "SocketVIA", "SocketVIA_chaos"],
    )


def _chaos11_table() -> ExperimentTable:
    return ExperimentTable(
        "c11",
        "Figure 11 DD execution time (us), factor 4 — fault-free vs the "
        "chaos-fig11 plan",
        ["prob_slow_pct",
         "SocketVIA", "SocketVIA_chaos", "sv_crashed_share", "sv_peer_share",
         "TCP", "TCP_chaos", "tcp_crashed_share", "tcp_peer_share"],
    )


def chaos8_update_rate(
    compute_ns_per_byte: float = 18.0,
    bounds_us=None,
    frames: int = 3,
) -> ExperimentTable:
    """Chaos panel c8: Figure 8 updates/s, fault-free next to the
    chaos-fig8 plan, per latency bound."""
    bounds_us = bounds_us or CHAOS8_BOUNDS_US
    plan_dict = _plan_dict("chaos-fig8")
    table = _chaos8_table()

    cache = {}

    def rate_for(protocol, block, chaos):
        key = (protocol, block, chaos)
        if key not in cache:
            if chaos:
                cache[key] = chaos8_rate(protocol, block,
                                         compute_ns_per_byte, frames,
                                         plan_dict)
            else:
                cache[key] = fig8_rate(protocol, block,
                                       compute_ns_per_byte, frames)
        return cache[key]

    for bound, b_tcp, b_sv in _fig8_blocks(compute_ns_per_byte, bounds_us):
        table.add_row(
            bound, b_tcp,
            rate_for("tcp", b_tcp, False) if b_tcp else None,
            rate_for("tcp", b_tcp, True) if b_tcp else None,
            b_sv,
            rate_for("socketvia", b_sv, False) if b_sv else None,
            rate_for("socketvia", b_sv, True) if b_sv else None)
    table.add_note(_CHAOS8_NOTE)
    return table


def chaos8_points(
    compute_ns_per_byte: float = 18.0,
    bounds_us=None,
    frames: int = 3,
) -> PointPlan:
    """Panel c8 as points; fault-free legs are plain Figure 8 points
    (same fn, figure, and params — shared cache entries)."""
    bounds_us = [int(b) for b in (bounds_us or CHAOS8_BOUNDS_US)]
    plan_dict = _plan_dict("chaos-fig8")
    base_figure = "8b" if compute_ns_per_byte else "8a"
    blocks = _fig8_blocks(compute_ns_per_byte, bounds_us)
    triples: List[tuple] = []
    for _, b_tcp, b_sv in blocks:
        for protocol, block in (("tcp", b_tcp), ("socketvia", b_sv)):
            if block:
                for chaos in (False, True):
                    if (protocol, block, chaos) not in triples:
                        triples.append((protocol, block, chaos))
    points = []
    for protocol, block, chaos in triples:
        params = {"protocol": protocol, "block": int(block),
                  "compute_ns_per_byte": float(compute_ns_per_byte),
                  "frames": int(frames)}
        if chaos:
            points.append(Point("c8", "chaos8_rate",
                                {**params, "fault_plan": plan_dict}))
        else:
            points.append(Point(base_figure, "fig8_rate", params))

    def merge(values: List[Any]) -> ExperimentTable:
        rate = dict(zip(triples, values))
        table = _chaos8_table()
        for bound, b_tcp, b_sv in blocks:
            table.add_row(
                bound, b_tcp,
                rate[("tcp", b_tcp, False)] if b_tcp else None,
                rate[("tcp", b_tcp, True)] if b_tcp else None,
                b_sv,
                rate[("socketvia", b_sv, False)] if b_sv else None,
                rate[("socketvia", b_sv, True)] if b_sv else None)
        table.add_note(_CHAOS8_NOTE)
        return table

    return PointPlan("c8", points, merge)


def chaos11_crash_recovery(
    probabilities=None,
    factor: int = CHAOS11_FACTOR,
    total_bytes: int = PAPER_IMAGE_BYTES // 2,
    compute_ns_per_byte: float = 90.0,
) -> ExperimentTable:
    """Chaos panel c11: Figure 11's DD sweep, fault-free next to the
    chaos-fig11 plan (worker crash + restart mid-run)."""
    probabilities = probabilities or CHAOS11_PROBABILITIES
    plan_dict = _plan_dict("chaos-fig11")
    table = _chaos11_table()
    for prob in probabilities:
        row = [int(prob * 100)]
        for proto in ("socketvia", "tcp"):
            base = fig11_cell(prob, factor, proto, total_bytes,
                              compute_ns_per_byte)
            chaos = chaos11_cell(prob, factor, proto, total_bytes,
                                 compute_ns_per_byte, plan_dict)
            row += [base, chaos[0], chaos[1], chaos[2]]
        table.add_row(*row)
    table.add_note(_CHAOS11_NOTE)
    return table


def chaos11_points(
    probabilities=None,
    factor: int = CHAOS11_FACTOR,
    total_bytes: int = PAPER_IMAGE_BYTES // 2,
    compute_ns_per_byte: float = 90.0,
) -> PointPlan:
    """Panel c11 as points; fault-free legs are plain Figure 11 points."""
    probabilities = [float(p)
                     for p in (probabilities or CHAOS11_PROBABILITIES)]
    factor = int(factor)
    plan_dict = _plan_dict("chaos-fig11")
    points = []
    for prob in probabilities:
        for proto in ("socketvia", "tcp"):
            params = {"prob": prob, "factor": factor, "protocol": proto,
                      "total_bytes": int(total_bytes),
                      "compute_ns_per_byte": float(compute_ns_per_byte)}
            points.append(Point("11", "fig11_cell", params))
            points.append(Point("c11", "chaos11_cell",
                                {**params, "fault_plan": plan_dict}))

    def merge(values: List[Any]) -> ExperimentTable:
        table = _chaos11_table()
        it = iter(values)
        for prob in probabilities:
            row = [int(prob * 100)]
            for _proto in ("socketvia", "tcp"):
                base = next(it)
                chaos = next(it)
                row += [base, chaos[0], chaos[1], chaos[2]]
            table.add_row(*row)
        table.add_note(_CHAOS11_NOTE)
        return table

    return PointPlan("c11", points, merge)


#: Registry of pure point functions, keyed by the name stored in each
#: :class:`~repro.bench.executor.Point` — the unit a process-pool task
#: executes and a cache entry is addressed by.  Names are part of the
#: cache key: renaming one orphans its entries (harmless; they evict).
POINT_FNS: Dict[str, Any] = {
    "fig2_economics": fig2_economics,
    "fig4a_size": fig4a_size,
    "fig4b_size": fig4b_size,
    "fig7_rate": fig7_rate,
    "fig8_rate": fig8_rate,
    "fig9_cell": fig9_cell,
    "fig10_cell": fig10_cell,
    "fig11_cell": fig11_cell,
    "chaos8_rate": chaos8_rate,
    "chaos11_cell": chaos11_cell,
    "serve_cell": serve_cell,
    "serve_scale_cell": serve_scale_cell,
    "serve_shard_cell": serve_shard_cell,
    "wcq_cell": wcq_cell,
    "wcb_cell": wcb_cell,
    "tails_cell": tails_cell,
}
