"""Per-figure experiment drivers.

One function per table/figure in the paper's evaluation (Section 5),
each returning an :class:`~repro.bench.records.ExperimentTable` whose
rows/series mirror what the paper plots.  The benchmark suite under
``benchmarks/`` calls these; so can users, directly::

    from repro.bench import figures
    print(figures.fig4a_latency().render())

Every driver accepts scale parameters so CI can run a quick variant;
the defaults regenerate the full figures.  All runs are deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dataset import ImageDataset, PAPER_IMAGE_BYTES
from repro.apps.loadbalance import (
    LoadBalanceConfig,
    paper_block_size,
    run_loadbalance,
)
from repro.apps.planning import (
    PipelinePlan,
    chunk_fetch_latency,
    plan_block_for_latency,
    plan_block_for_rate,
)
from repro.apps.queries import mixed_query_workload, steady_rate_workload
from repro.apps.vizserver import (
    VizServerConfig,
    measure_max_update_rate,
    run_vizserver,
)
from repro.bench.microbench import (
    ping_pong_latency,
    streaming_bandwidth,
    via_ping_pong_latency,
    via_streaming_bandwidth,
)
from repro.bench.records import ExperimentTable, ratio
from repro.cluster.hetero import RandomSlowdown, StaticSlowdown
from repro.net.calibration import get_model
from repro.sim.units import bytes_per_sec_to_mbps, to_usec, usec

__all__ = [
    "fig2_message_size_economics",
    "fig4a_latency",
    "fig4b_bandwidth",
    "fig7_update_rate_guarantee",
    "fig8_latency_guarantee",
    "fig9_query_mix",
    "fig10_rr_reaction",
    "fig11_dd_heterogeneity",
    "MICRO_SIZES_LATENCY",
    "MICRO_SIZES_BANDWIDTH",
    "FIG7_RATES",
    "FIG8_BOUNDS_US",
    "FIG9_FRACTIONS",
    "FIG10_FACTORS",
    "FIG11_PROBABILITIES",
    "FIG11_FACTORS",
]

#: Figure 4(a) x-axis: 4 bytes .. 4 KB.
MICRO_SIZES_LATENCY = [4, 16, 64, 256, 1024, 2048, 4096]
#: Figure 4(b) x-axis: 4 bytes .. 64 KB.
MICRO_SIZES_BANDWIDTH = [64, 256, 1024, 2048, 4096, 8192, 16384, 32768, 65536]
#: Figure 7 x-axis (updates per second).
FIG7_RATES = [4.0, 3.75, 3.5, 3.25, 3.0, 2.75, 2.5, 2.25, 2.0]
#: Figure 8 x-axis (partial-update latency guarantee, microseconds).
FIG8_BOUNDS_US = [1000, 900, 800, 700, 600, 500, 400, 300, 200, 100]
#: Figure 9 x-axis (fraction of complete-update queries).
FIG9_FRACTIONS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
#: Figure 10 x-axis (factor of heterogeneity).
FIG10_FACTORS = [2, 4, 10]
#: Figure 11 axes.
FIG11_PROBABILITIES = [0.1, 0.3, 0.5, 0.7, 0.9]
FIG11_FACTORS = [2, 4, 8]


# ---------------------------------------------------------------------------
# Figure 2: the message-size economics behind data repartitioning
# ---------------------------------------------------------------------------


def fig2_message_size_economics(required_bandwidth_mbps: float = 450.0) -> ExperimentTable:
    """Figure 2 (conceptual, here with calibrated numbers): the message
    sizes U1 (kernel sockets) and U2 (high-performance substrate) at
    which each transport attains a required bandwidth B, and the
    latency improvements L1 -> L2 (same size, faster substrate) -> L3
    (substrate at its own smaller size)."""
    from repro.sim.units import mbps_to_bytes_per_sec

    tcp = get_model("tcp")
    sv = get_model("socketvia")
    target = mbps_to_bytes_per_sec(required_bandwidth_mbps)
    u1 = tcp.size_for_bandwidth(target)
    u2 = sv.size_for_bandwidth(target)
    l1 = to_usec(tcp.des_message_latency(u1))
    l2 = to_usec(sv.des_message_latency(u1))
    l3 = to_usec(sv.des_message_latency(u2))
    table = ExperimentTable(
        "fig2",
        f"Message-size economics at required bandwidth B = "
        f"{required_bandwidth_mbps:.0f} Mbps",
        ["quantity", "value"],
    )
    table.add_row("U1 (kernel sockets size for B, bytes)", u1)
    table.add_row("U2 (high-perf substrate size for B, bytes)", u2)
    table.add_row("L1 = kernel latency at U1 (us)", l1)
    table.add_row("L2 = substrate latency at U1 (us)", l2)
    table.add_row("L3 = substrate latency at U2 (us)", l3)
    table.add_note(
        "direct improvement L1->L2 (faster wire at the same chunking), "
        "indirect improvement L2->L3 (repartitioning to U2)"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 4: micro-benchmarks
# ---------------------------------------------------------------------------


def fig4a_latency(sizes=None) -> ExperimentTable:
    """Figure 4(a): one-way latency vs message size, three transports."""
    sizes = sizes or MICRO_SIZES_LATENCY
    table = ExperimentTable(
        "fig4a",
        "Micro-benchmark latency (us) vs message size",
        ["msg_bytes", "VIA", "SocketVIA", "TCP"],
    )
    for size in sizes:
        table.add_row(
            size,
            to_usec(via_ping_pong_latency(size)),
            to_usec(ping_pong_latency("socketvia", size)),
            to_usec(ping_pong_latency("tcp", size)),
        )
    table.add_note("paper: SocketVIA 9.5 us, ~5x below TCP")
    return table


def fig4b_bandwidth(sizes=None) -> ExperimentTable:
    """Figure 4(b): streaming bandwidth (Mbps) vs message size."""
    sizes = sizes or MICRO_SIZES_BANDWIDTH
    table = ExperimentTable(
        "fig4b",
        "Micro-benchmark bandwidth (Mbps) vs message size",
        ["msg_bytes", "VIA", "SocketVIA", "TCP"],
    )
    for size in sizes:
        table.add_row(
            size,
            bytes_per_sec_to_mbps(via_streaming_bandwidth(size)),
            bytes_per_sec_to_mbps(streaming_bandwidth("socketvia", size)),
            bytes_per_sec_to_mbps(streaming_bandwidth("tcp", size)),
        )
    table.add_note("paper peaks: VIA 795, SocketVIA 763, TCP 510 Mbps")
    return table


# ---------------------------------------------------------------------------
# Figure 7: average partial-update latency under update-rate guarantees
# ---------------------------------------------------------------------------


def _fig7_point(protocol: str, block: int, rate: float, compute: float, frames: int):
    cfg = VizServerConfig(
        protocol=protocol, block_bytes=block, compute_ns_per_byte=compute
    )
    workload = steady_rate_workload(
        cfg.dataset(), rate=rate, duration=frames / rate + 1e-3, partial_every=1
    )
    res = run_vizserver(cfg, workload)
    return (
        to_usec(res.latency("partial").mean),
        res.achieved_update_rate,
    )


def fig7_update_rate_guarantee(
    compute_ns_per_byte: float = 0.0,
    rates=None,
    frames: int = 3,
) -> ExperimentTable:
    """Figure 7: partial-update latency while guaranteeing a full-update
    rate.  Series: TCP (blocks planned for TCP), SocketVIA at TCP's
    blocks, SocketVIA with Data Repartitioning (its own blocks).

    ``compute_ns_per_byte=0`` reproduces 7(a); 18.0 reproduces 7(b).
    """
    rates = rates or FIG7_RATES
    variant = "b (18 ns/B compute)" if compute_ns_per_byte else "a (no compute)"
    table = ExperimentTable(
        f"fig7{'b' if compute_ns_per_byte else 'a'}",
        f"Avg partial-update latency (us) with update/s guarantees — {variant}",
        ["updates_per_sec", "tcp_block", "TCP", "SocketVIA", "dr_block",
         "SocketVIA_DR", "tcp_rate_achieved", "dr_rate_achieved"],
    )
    tcp_plan = PipelinePlan(model=get_model("tcp"), compute_ns_per_byte=compute_ns_per_byte)
    sv_plan = PipelinePlan(model=get_model("socketvia"), compute_ns_per_byte=compute_ns_per_byte)
    for rate in rates:
        b_tcp = plan_block_for_rate(tcp_plan, rate)
        b_sv = plan_block_for_rate(sv_plan, rate)
        tcp_lat = sv_lat = dr_lat = tcp_rate = dr_rate = None
        if b_tcp is not None:
            tcp_lat, tcp_rate = _fig7_point("tcp", b_tcp, rate, compute_ns_per_byte, frames)
            sv_lat, _ = _fig7_point("socketvia", b_tcp, rate, compute_ns_per_byte, frames)
        if b_sv is not None:
            dr_lat, dr_rate = _fig7_point("socketvia", b_sv, rate, compute_ns_per_byte, frames)
        table.add_row(rate, b_tcp, tcp_lat, sv_lat, b_sv, dr_lat, tcp_rate, dr_rate)
    improvements = [
        (ratio(t, s), ratio(t, d))
        for t, s, d in zip(table.column("TCP"), table.column("SocketVIA"),
                           table.column("SocketVIA_DR"))
        if t is not None
    ]
    if improvements:
        best_no_dr = max((r for r, _ in improvements if r), default=None)
        best_dr = max((r for _, r in improvements if r), default=None)
        table.add_note(
            f"best improvement: {best_no_dr:.1f}x without repartitioning, "
            f"{best_dr:.1f}x with (paper: >3.5x / >10x for (a), >4x / >12x for (b))"
        )
    table.add_note("'--' = no block size meets the guarantee (drop-out)")
    return table


# ---------------------------------------------------------------------------
# Figure 8: updates/s under partial-update latency guarantees
# ---------------------------------------------------------------------------


def fig8_latency_guarantee(
    compute_ns_per_byte: float = 0.0,
    bounds_us=None,
    frames: int = 3,
) -> ExperimentTable:
    """Figure 8: maximum full updates/s while a partial-update chunk
    fetch stays under the latency guarantee.  Series as Figure 7."""
    bounds_us = bounds_us or FIG8_BOUNDS_US
    variant = "b (18 ns/B compute)" if compute_ns_per_byte else "a (no compute)"
    table = ExperimentTable(
        f"fig8{'b' if compute_ns_per_byte else 'a'}",
        f"Updates/s with latency guarantees — {variant}",
        ["latency_us", "tcp_block", "TCP", "SocketVIA", "dr_block", "SocketVIA_DR"],
    )
    tcp_plan = PipelinePlan(model=get_model("tcp"), compute_ns_per_byte=compute_ns_per_byte)
    sv_plan = PipelinePlan(model=get_model("socketvia"), compute_ns_per_byte=compute_ns_per_byte)

    cache = {}

    def rate_for(protocol, block):
        key = (protocol, block)
        if key not in cache:
            cfg = VizServerConfig(
                protocol=protocol, block_bytes=block,
                compute_ns_per_byte=compute_ns_per_byte,
            )
            cache[key] = measure_max_update_rate(cfg, frames=frames)
        return cache[key]

    for bound in bounds_us:
        b_tcp = plan_block_for_latency(tcp_plan, usec(bound))
        b_sv = plan_block_for_latency(sv_plan, usec(bound))
        tcp_rate = rate_for("tcp", b_tcp) if b_tcp else None
        sv_rate = rate_for("socketvia", b_tcp) if b_tcp else None
        dr_rate = rate_for("socketvia", b_sv) if b_sv else None
        table.add_row(bound, b_tcp, tcp_rate, sv_rate, b_sv, dr_rate)
    table.add_note(
        "paper: TCP drops out at the 100 us guarantee; SocketVIA stays near peak"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 9: mixed query types vs average response time
# ---------------------------------------------------------------------------


def fig9_query_mix(
    compute_ns_per_byte: float = 0.0,
    fractions=None,
    partitions=(1, 8, 64),
    n_queries: int = 10,
    seed: int = 31,
) -> ExperimentTable:
    """Figure 9: average query response time (ms) vs the fraction of
    complete-update queries, for several dataset partitionings.

    Partitioning 1 = "No Partitions" (every query fetches the whole
    16 MB image); zoom queries need 4 chunks when partitioned.
    """
    fractions = fractions or FIG9_FRACTIONS
    variant = "b (18 ns/B compute)" if compute_ns_per_byte else "a (no compute)"
    columns = ["fraction_complete"]
    for proto in ("SocketVIA", "TCP"):
        for parts in partitions:
            label = "none" if parts == 1 else str(parts)
            columns.append(f"{proto}_p{label}")
    table = ExperimentTable(
        f"fig9{'b' if compute_ns_per_byte else 'a'}",
        f"Avg response time (ms) vs fraction of complete updates — {variant}",
        columns,
    )
    for frac in fractions:
        row = [frac]
        for proto in ("socketvia", "tcp"):
            for parts in partitions:
                block = PAPER_IMAGE_BYTES // parts
                cfg = VizServerConfig(
                    protocol=proto,
                    block_bytes=block,
                    compute_ns_per_byte=compute_ns_per_byte,
                    closed_loop=True,
                )
                rng = np.random.default_rng(seed)
                workload = mixed_query_workload(
                    cfg.dataset(), n_queries, frac, rng, exact=True
                )
                res = run_vizserver(cfg, workload)
                row.append(res.latency("any").mean * 1e3)
        table.add_row(*row)
    table.add_note(
        "paper (150 ms budget, 64 partitions): TCP tolerates ~60% complete "
        "queries, SocketVIA ~90%"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 10: round-robin reaction time vs heterogeneity factor
# ---------------------------------------------------------------------------


def fig10_rr_reaction(
    factors=None,
    total_bytes: int = PAPER_IMAGE_BYTES // 2,
    compute_ns_per_byte: float = 90.0,
) -> ExperimentTable:
    """Figure 10: how long the RR balancer stays committed to a slow
    node, vs the factor of heterogeneity.  Blocks: 16 KB (TCP) / 2 KB
    (SocketVIA) — the perfect-pipelining sizes.

    Worker computation defaults to 90 ns/byte (the Figure 10/11 workers
    process each block several times — also the paper's slowdown
    emulation mechanism) so that both transports are compute-bound and
    the reaction time reflects block processing, not the balancer's own
    send path.
    """
    factors = factors or FIG10_FACTORS
    table = ExperimentTable(
        "fig10",
        "Load-balancer reaction time (us) to heterogeneity — Round-Robin",
        ["factor", "SocketVIA", "TCP", "ratio_tcp_over_sv"],
    )
    slow_index = 2
    for factor in factors:
        reactions = {}
        for proto in ("socketvia", "tcp"):
            cfg = LoadBalanceConfig(
                protocol=proto,
                policy="rr",
                block_bytes=paper_block_size(proto),
                total_bytes=total_bytes,
                compute_ns_per_byte=compute_ns_per_byte,
                slow_workers={slow_index: StaticSlowdown(factor)},
            )
            res = run_loadbalance(cfg)
            reactions[proto] = to_usec(res.reaction_time(slow_index))
        table.add_row(
            factor,
            reactions["socketvia"],
            reactions["tcp"],
            ratio(reactions["tcp"], reactions["socketvia"]),
        )
    table.add_note("paper: SocketVIA reacts ~8x faster (16 KB vs 2 KB blocks)")
    return table


# ---------------------------------------------------------------------------
# Figure 11: demand-driven scheduling under dynamic slowdown
# ---------------------------------------------------------------------------


def fig11_dd_heterogeneity(
    probabilities=None,
    factors=None,
    total_bytes: int = PAPER_IMAGE_BYTES // 2,
    compute_ns_per_byte: float = 90.0,
) -> ExperimentTable:
    """Figure 11: execution time under demand-driven scheduling when one
    node is slow with a given probability per block.

    Defaults process half an image at 90 ns/byte (the workers do the
    visualization work repeatedly per block, see DESIGN.md) so that the
    system is compute-bound for both transports — the regime where the
    paper observes "application performance using TCP is close to that
    of SocketVIA".
    """
    probabilities = probabilities or FIG11_PROBABILITIES
    factors = factors or FIG11_FACTORS
    columns = ["prob_slow_pct"]
    for proto in ("SocketVIA", "TCP"):
        for f in factors:
            columns.append(f"{proto}({f})")
    table = ExperimentTable(
        "fig11",
        "Execution time (us) under Demand-Driven scheduling, one dynamically slow node",
        columns,
    )
    slow_index = 2
    for prob in probabilities:
        row = [int(prob * 100)]
        for proto in ("socketvia", "tcp"):
            for factor in factors:
                cfg = LoadBalanceConfig(
                    protocol=proto,
                    policy="dd",
                    block_bytes=paper_block_size(proto),
                    total_bytes=total_bytes,
                    compute_ns_per_byte=compute_ns_per_byte,
                    slow_workers={
                        slow_index: RandomSlowdown(factor, prob)
                    },
                )
                res = run_loadbalance(cfg)
                row.append(to_usec(res.execution_time))
        table.add_row(*row)
    table.add_note(
        "paper: TCP tracks SocketVIA closely under DD; time rises with "
        "P(slow) and the heterogeneity factor"
    )
    return table
