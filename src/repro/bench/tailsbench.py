"""The ``tails`` suite: replicated dispatch under straggler plans.

Two panels over the same cells (docs/TAILS.md):

* ``tls`` — end-to-end query latency percentiles (p50 / p99 / p999,
  exact nearest-rank over every query) for each fault plan x
  replication factor, TCP vs SocketVIA side by side.  The headline
  claim gates the k=2 p999 cut under the ``straggler`` preset at
  >= 2x for TCP.
* ``tlc`` — the cost and conservation ledger of the same runs:
  executed worker core-time (winner compute plus cancelled-loser
  partials), replicas dispatched / completed / retracted, and hedges
  sent.  The overhead claim bounds no-fault k=2 executed work at
  <= 1.15x the unreplicated run; the conservation claim requires
  ``completed == dispatched - retracted`` exactly in every cell.

Both panels decompose into the *same* cache-addressable points (one
per plan x k x protocol — ``tlc`` reuses ``tls``'s entries), so
``bench run tails --jobs N`` parallelizes per cell and reruns are
cache hits.  Every column is simulated time or exact bookkeeping — no
wall-clock columns — so the comparator gates the whole record.
"""

from __future__ import annotations

from typing import Any, List

from repro.apps.tails import TailsConfig, run_tails
from repro.bench.executor import Point, PointPlan
from repro.bench.records import ExperimentTable

__all__ = [
    "tails_cell",
    "tls_sweep",
    "tlc_sweep",
    "tls_points",
    "tlc_points",
    "TAILS_PLANS",
    "TAILS_KS",
    "TAILS_WORKERS",
    "TAILS_QUERIES",
    "TAILS_RATE",
    "TAILS_SEED",
]

#: Fault plans the panels sweep (presets in ``repro.faults.presets``).
TAILS_PLANS = ("none", "straggler")
#: Replication factors of the sweep.
TAILS_KS = (1, 2, 3)
TAILS_WORKERS = 6
TAILS_QUERIES = 400
#: Offered load (queries/s): ~0.8 utilization for TCP with protocol
#: overhead, lower for SocketVIA — queues form but never diverge.
TAILS_RATE = 3200.0
TAILS_SEED = 29

_PROTOCOLS = ("socketvia", "tcp")

_TLS_NOTE = (
    "open-loop Poisson queries, hedged replication (replica k>1 "
    "dispatched only if the query is undecided hedge_us after "
    "arrival); latency is collector arrival minus scheduled arrival; "
    "percentiles are exact nearest-rank over every query"
)
_TLC_NOTE = (
    "work_ms counts executed worker core-time including cancelled-"
    "loser partials; conservation is exact per cell: completed == "
    "dispatched - retracted"
)


def tails_cell(protocol: str, plan: str, k: int, n_workers: int,
               n_queries: int, rate: float, seed: int) -> List[Any]:
    """Point: one (protocol, fault plan, replication factor) run.

    Returns ``[p50_ms, p99_ms, p999_ms, work_ms, dispatched,
    completed, retracted, hedges]``.
    """
    from repro.faults.plan import injecting
    from repro.faults.presets import get_preset

    with injecting(get_preset(plan)):
        result = run_tails(TailsConfig(
            protocol=protocol,
            k=int(k),
            n_workers=int(n_workers),
            n_queries=int(n_queries),
            rate=float(rate),
            seed=int(seed),
        ))
    return [
        float(result.latency_percentile(50) * 1e3),
        float(result.latency_percentile(99) * 1e3),
        float(result.latency_percentile(99.9) * 1e3),
        float(result.work_executed * 1e3),
        int(result.dispatched),
        int(result.completed),
        int(result.retracted),
        int(result.hedges_sent),
    ]


def _tls_table() -> ExperimentTable:
    return ExperimentTable(
        "tls",
        "Query latency percentiles vs fault plan and replication factor",
        ["plan", "k",
         "SocketVIA_p50_ms", "TCP_p50_ms",
         "SocketVIA_p99_ms", "TCP_p99_ms",
         "SocketVIA_p999_ms", "TCP_p999_ms"],
    )


def _tlc_table() -> ExperimentTable:
    return ExperimentTable(
        "tlc",
        "Replication cost and conservation ledger per plan and k",
        ["plan", "k",
         "SocketVIA_work_ms", "TCP_work_ms",
         "SocketVIA_dispatched", "TCP_dispatched",
         "SocketVIA_completed", "TCP_completed",
         "SocketVIA_retracted", "TCP_retracted",
         "SocketVIA_hedges", "TCP_hedges"],
    )


def _axis(plans, ks):
    return [(plan, int(k)) for plan in plans for k in ks]


def _tls_row(plan: str, k: int, sv: List[Any], tcp: List[Any]) -> List[Any]:
    return [plan, k, sv[0], tcp[0], sv[1], tcp[1], sv[2], tcp[2]]


def _tlc_row(plan: str, k: int, sv: List[Any], tcp: List[Any]) -> List[Any]:
    return [plan, k, sv[3], tcp[3], sv[4], tcp[4], sv[5], tcp[5],
            sv[6], tcp[6], sv[7], tcp[7]]


def _points(plans, ks, n_workers, n_queries, rate, seed) -> List[Point]:
    # Both panels share one point per cell (figure id "tls"), so the
    # ``tlc`` plan resolves entirely from ``tls``'s cache entries.
    return [
        Point("tls", "tails_cell",
              {"protocol": proto, "plan": plan, "k": int(k),
               "n_workers": int(n_workers), "n_queries": int(n_queries),
               "rate": float(rate), "seed": int(seed)})
        for plan, k in _axis(plans, ks)
        for proto in _PROTOCOLS
    ]


def tls_sweep(
    plans=TAILS_PLANS,
    ks=TAILS_KS,
    n_workers: int = TAILS_WORKERS,
    n_queries: int = TAILS_QUERIES,
    rate: float = TAILS_RATE,
    seed: int = TAILS_SEED,
) -> ExperimentTable:
    """The ``tls`` panel, serial path."""
    table = _tls_table()
    for plan, k in _axis(plans, ks):
        cells = {
            proto: tails_cell(proto, plan, k, n_workers, n_queries,
                              rate, seed)
            for proto in _PROTOCOLS
        }
        table.add_row(*_tls_row(plan, k, cells["socketvia"], cells["tcp"]))
    table.add_note(_TLS_NOTE)
    return table


def tlc_sweep(
    plans=TAILS_PLANS,
    ks=TAILS_KS,
    n_workers: int = TAILS_WORKERS,
    n_queries: int = TAILS_QUERIES,
    rate: float = TAILS_RATE,
    seed: int = TAILS_SEED,
) -> ExperimentTable:
    """The ``tlc`` panel, serial path."""
    table = _tlc_table()
    for plan, k in _axis(plans, ks):
        cells = {
            proto: tails_cell(proto, plan, k, n_workers, n_queries,
                              rate, seed)
            for proto in _PROTOCOLS
        }
        table.add_row(*_tlc_row(plan, k, cells["socketvia"], cells["tcp"]))
    table.add_note(_TLC_NOTE)
    return table


def tls_points(
    plans=TAILS_PLANS,
    ks=TAILS_KS,
    n_workers: int = TAILS_WORKERS,
    n_queries: int = TAILS_QUERIES,
    rate: float = TAILS_RATE,
    seed: int = TAILS_SEED,
) -> PointPlan:
    """``tls`` as one point per (plan, k, protocol)."""
    axis = _axis(plans, ks)
    points = _points(plans, ks, n_workers, n_queries, rate, seed)

    def merge(values: List[Any]) -> ExperimentTable:
        table = _tls_table()
        for i, (plan, k) in enumerate(axis):
            sv, tcp = values[2 * i], values[2 * i + 1]
            table.add_row(*_tls_row(plan, k, sv, tcp))
        table.add_note(_TLS_NOTE)
        return table

    return PointPlan("tls", points, merge)


def tlc_points(
    plans=TAILS_PLANS,
    ks=TAILS_KS,
    n_workers: int = TAILS_WORKERS,
    n_queries: int = TAILS_QUERIES,
    rate: float = TAILS_RATE,
    seed: int = TAILS_SEED,
) -> PointPlan:
    """``tlc`` over the same points as ``tls`` (shared cache entries)."""
    axis = _axis(plans, ks)
    points = _points(plans, ks, n_workers, n_queries, rate, seed)

    def merge(values: List[Any]) -> ExperimentTable:
        table = _tlc_table()
        for i, (plan, k) in enumerate(axis):
            sv, tcp = values[2 * i], values[2 * i + 1]
            table.add_row(*_tlc_row(plan, k, sv, tcp))
        table.add_note(_TLC_NOTE)
        return table

    return PointPlan("tlc", points, merge)
