"""Execute benchmark suites and persist their records.

:func:`run_experiment` runs every panel of one suite under a live
trace subscription (the permanent trace points threaded through the
stack in PR 1), aggregates per-kind / per-layer event counts and
time-in-layer on the fly — no ring buffer, so arbitrarily long runs
cost O(1) memory — extracts the suite's anchors and claims, and wraps
everything in a schema-versioned :class:`~repro.bench.schema.BenchRecord`.

The drivers themselves are deterministic, so two runs of the same
experiment at the same tree produce identical records except for the
``wall_time_s`` / ``git_sha`` provenance fields (``git_sha`` is
ignored by the comparator; wall-clock metrics are gated warn-only) —
including ``events_processed``, the deterministic cost counter
recorded since schema version 2.
"""

from __future__ import annotations

import os
import subprocess
import time
from typing import Dict, Iterable, List, Optional

from repro.bench.records import ExperimentTable
from repro.bench.schema import SCHEMA_VERSION, BenchRecord
from repro.bench.suites import BenchSuite, get_suite
from repro.sim.core import global_events_processed
from repro.sim.stats import Summary
from repro.sim.trace import TraceRecord, Tracer, layer_of, tracing

__all__ = ["TraceAggregator", "run_experiment", "git_sha"]

#: Trace fields that carry an instrumented duration (seconds).  A
#: record contributes the first one it has to its kind's time bucket:
#: ``cost`` (kernel charges), ``elapsed`` (DataCutter units of work),
#: ``latency`` (socket receive completions).
_DURATION_FIELDS = ("cost", "elapsed", "latency")


class TraceAggregator:
    """Streaming per-kind counter: events and summed instrumented time.

    Subscribed to a :class:`~repro.sim.trace.Tracer` with the match-all
    kind (``""``), so it sees every record without the tracer's ring
    buffer (bounded memory regardless of run length).
    """

    def __init__(self) -> None:
        self._events: Dict[str, int] = {}
        self._times: Dict[str, List[float]] = {}

    def __call__(self, rec: TraceRecord) -> None:
        self._events[rec.kind] = self._events.get(rec.kind, 0) + 1
        for f in _DURATION_FIELDS:
            value = rec.fields.get(f)
            if value is not None:
                self._times.setdefault(rec.kind, []).append(float(value))
                break

    def kinds(self) -> Dict[str, Dict[str, float]]:
        """Per-kind ``{"events": n, "time_s": t}`` (t = 0 when untimed)."""
        out = {}
        for kind in sorted(self._events):
            s = Summary.of(self._times.get(kind, ()))
            out[kind] = {"events": self._events[kind],
                         "time_s": s.total}
        return out

    def layers(self) -> Dict[str, Dict[str, float]]:
        """Per-layer aggregate of :meth:`kinds` via the trace catalog."""
        out: Dict[str, Dict[str, float]] = {}
        for kind, stats in self.kinds().items():
            bucket = out.setdefault(layer_of(kind),
                                    {"events": 0, "time_s": 0.0})
            bucket["events"] += stats["events"]
            bucket["time_s"] += stats["time_s"]
        return out


def git_sha() -> str:
    """Short sha of HEAD, or ``"unknown"`` outside a git checkout.

    Resolves against the installed package's directory rather than the
    caller's CWD, captures stderr (no "fatal: not a git repository"
    noise), and swallows every way the probe can fail — missing git
    binary, timeout, deleted working directory — so callers never need
    a try/except.  Also feeds the sweep cache's code fingerprint
    (:func:`repro.bench.cache.code_fingerprint`).
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError, ValueError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def _write_profile(profiler, directory: str, bench_id: str,
                   panel: str) -> str:
    """Dump one panel's cProfile as top-20 cumulative lines.

    Written next to the run records (``benchmarks/results/`` is
    gitignored, so profiles never end up committed).  Only the driver
    process is profiled: meta panels and in-process point sweeps are
    covered fully, while work farmed to pool workers shows up as time
    inside the executor's result iteration.
    """
    import io
    import pstats

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"PROFILE_{bench_id}_{panel}.txt")
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(20)
    with open(path, "w") as fh:
        fh.write(buf.getvalue())
    return path


def run_experiment(
    bench_id: str,
    quick: bool = False,
    panels: Optional[Iterable[str]] = None,
    progress=None,
    jobs: Optional[int] = None,
    cache=None,
    executor=None,
    profile_dir: Optional[str] = None,
) -> BenchRecord:
    """Run one suite and return its :class:`BenchRecord`.

    Figure panels execute through their point-sweep decomposition
    (``repro.bench.suites.PLANS``) on a
    :class:`~repro.bench.executor.SweepExecutor` — parallel when
    ``jobs > 1``, memoized when a cache is attached — with the
    per-point trace profiles merged back in deterministic plan order,
    so the record is bit-identical whatever ran the points.  Meta
    panels with no plan (``kernel``, ``sweep``) run inline and serial:
    they time the host.

    Parameters
    ----------
    bench_id:
        Suite id (``fig04``; ``4`` and ``fig4`` also resolve).
    quick:
        Reduced axes — the CI smoke variant.  Recorded in the output so
        a quick run is never compared against a full baseline silently.
    panels:
        Subset of the suite's panels to run (default: all of them).
    progress:
        Optional ``fn(message: str)`` called before each panel.
    jobs:
        Point-sweep worker count (default: ``REPRO_JOBS`` env, else 1).
    cache:
        Optional :class:`~repro.bench.cache.ResultCache` for point
        results (default: no caching at this layer; the CLI and the
        pytest session attach one).
    executor:
        Reuse an existing :class:`~repro.bench.executor.SweepExecutor`
        (its pool and cache) instead of building one from ``jobs`` /
        ``cache``; the caller keeps ownership and must close it.
    profile_dir:
        When given, cProfile each panel in the driver process and write
        ``PROFILE_<exp>_<panel>.txt`` (top 20 cumulative lines) there.
    """
    suite: BenchSuite = get_suite(bench_id)
    selected = tuple(panels) if panels is not None else suite.panels
    unknown = [p for p in selected if p not in suite.panels]
    if unknown:
        raise KeyError(
            f"{suite.bench_id} has no panels {unknown}; have {list(suite.panels)}")

    from repro.bench.executor import (SweepExecutor, layers_from_kinds,
                                      merge_kinds)
    from repro.bench.suites import FIGURES, PLANS
    from repro.sim.flow import effective_sim_mode

    own_executor = executor is None
    if own_executor:
        executor = SweepExecutor(jobs=jobs, cache=cache)

    tables: Dict[str, ExperimentTable] = {}
    kind_parts: List[Dict[str, Dict[str, float]]] = []
    events = 0
    start = time.perf_counter()
    try:
        for panel in selected:
            if progress is not None:
                progress(f"running {suite.bench_id} panel {panel} "
                         f"({'quick' if quick else 'full'} axes)")
            profiler = None
            if profile_dir is not None:
                import cProfile

                profiler = cProfile.Profile()
                profiler.enable()
            try:
                plan_fn = PLANS.get(panel)
                if plan_fn is None:
                    agg = TraceAggregator()
                    tracer = Tracer()
                    tracer.subscribe("", agg)
                    before = global_events_processed()
                    with tracing(tracer, record=False):
                        tables[panel] = FIGURES[panel](quick)
                    events += global_events_processed() - before
                    kind_parts.append(agg.kinds())
                else:
                    plan = plan_fn(quick)
                    results = executor.run(plan.points, progress=progress)
                    tables[panel] = plan.merge([r.value for r in results])
                    events += sum(r.events for r in results)
                    kind_parts.extend(r.kinds for r in results)
            finally:
                if profiler is not None:
                    profiler.disable()
                    path = _write_profile(
                        profiler, profile_dir, suite.bench_id, panel)
                    if progress is not None:
                        progress(f"profile: wrote {path}")
    finally:
        if own_executor:
            executor.close()
    wall = time.perf_counter() - start

    kinds = merge_kinds(kind_parts)
    return BenchRecord(
        experiment=suite.bench_id,
        title=suite.title,
        tables={p: t.to_dict() for p, t in tables.items()},
        anchors=[a.to_dict() for a in suite.anchors(tables)],
        claims=[c.to_dict() for c in suite.claims(tables)],
        layers=layers_from_kinds(kinds),
        kinds=kinds,
        git_sha=git_sha(),
        seed=None,
        quick=quick,
        wall_time_s=round(wall, 3),
        events_processed=events,
        sim_mode=effective_sim_mode(),
        schema_version=SCHEMA_VERSION,
    )
