"""Result tables for the benchmark harness.

Every figure reproduction produces an :class:`ExperimentTable` — the
same rows/series the paper plots — which the benchmark suite prints and
saves.  Formatting is plain ASCII so `bench_output.txt` diffs cleanly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentTable", "fmt", "ratio"]


def fmt(value: Any, precision: int = 2) -> str:
    """Human formatting: None -> drop-out marker, floats trimmed."""
    if value is None:
        return "--"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 1:
            return f"{value:.{precision}f}"
        return f"{value:.{precision + 2}g}"
    return str(value)


def ratio(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """Safe a/b (None when either side is missing or b is 0)."""
    if a is None or b is None or b == 0:
        return None
    return a / b


@dataclass
class ExperimentTable:
    """One titled table of experiment output.

    ``rows`` hold raw values (floats/None); formatting happens at
    render time so the raw data stays machine-readable via
    :meth:`to_dict`.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} cells, "
                f"table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a footnote rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
        }

    # -- rendering -----------------------------------------------------------------

    def render(self, precision: int = 2) -> str:
        """ASCII table with title and footnotes."""
        cells = [[fmt(v, precision) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            header,
            sep,
        ]
        for row in cells:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def save(self, directory: str) -> str:
        """Write the rendered table to ``{dir}/{experiment_id}.txt`` and
        its machine-readable form to ``{dir}/{experiment_id}.json``."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.experiment_id}.txt")
        with open(path, "w") as fh:
            fh.write(self.render() + "\n")
        with open(os.path.join(directory, f"{self.experiment_id}.json"), "w") as fh:
            json.dump(self.to_dict(), fh, indent=1)
        return path

    @classmethod
    def load_json(cls, path: str) -> "ExperimentTable":
        """Rebuild a table from a saved ``.json`` file."""
        with open(path) as fh:
            d = json.load(fh)
        table = cls(d["experiment_id"], d["title"], d["columns"])
        for row in d["rows"]:
            table.add_row(*row)
        for note in d["notes"]:
            table.add_note(note)
        return table

    def __str__(self) -> str:  # pragma: no cover
        return self.render()
