"""Fluid-flow vs packet fidelity suite (``bench run fluid``).

Runs a small set of bulk-transfer scenarios **twice each** — once in
packet mode, once in fluid mode — on identical fresh clusters, and
tabulates the simulated result alongside the kernel-event economy.
The suite is the executable statement of the fluid-mode contract
(docs/ARCHITECTURE.md, "Fluid-flow mode"):

* isolated large transfers are *bit-compatible*: a single message with
  the whole window/credit allowance in hand collapses to the analytic
  pipeline solution, which is exactly what the packet path converges
  to — so the times agree to float noise while the event count drops
  by an order of magnitude;
* saturated or contended scenarios (streaming pipelines, fan-in) are
  *banded*: the fluid path either falls back to packets (pipelines
  keep the window busy, so the eligibility gate stays closed) or
  models contention analytically — processor-sharing wire drains plus
  receiver-side kernel/CPU occupancy for the overlapped receive work
  (fan-in) — all within the comparator's 5% tolerance of the packet
  truth.

Every measurement here is deterministic — the drivers pin their own
mode with :func:`repro.sim.flow.simulation_mode`, overriding whatever
``--mode``/``REPRO_SIM_MODE`` the run was launched under — so the
whole table, event counts included, is gated exactly by the
comparator.  CI's ``fluid-smoke`` job reads the
``fluid_min_large_ratio`` anchor off the committed record.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.bench.records import ExperimentTable
from repro.cluster.topology import Cluster
from repro.sim.core import global_events_processed
from repro.sim.flow import simulation_mode
from repro.sockets.factory import ProtocolAPI

__all__ = ["fluid_suite", "FAN_IN_SENDERS", "LARGE_BYTES"]

_PORT = 5000

#: Transfers at or above this size must show the headline event
#: economy (the ``fluid_large_10x`` claim).
LARGE_BYTES = 1024 * 1024

#: Concurrent senders in the fan-in scenario (exercises the
#: FlowModel's processor-sharing drain on the receiver downlink).
FAN_IN_SENDERS = 2


def _one_shot_transfer(protocol: str, msg_bytes: int,
                       iterations: int = 16) -> float:
    """Mean one-way seconds for isolated message + same-size echo
    round trips on a fresh pair.

    Each round trip is isolated — nothing else on the wire, the whole
    window/credit allowance home — so the eligibility gates are open on
    both legs and in fluid mode both the request and the echo collapse.
    A few iterations amortize the (mode-independent) connection setup
    out of the event counts.
    """
    cluster = Cluster(seed=1)
    cluster.add_fabric("clan")
    cluster.add_fabric("ethernet")
    cluster.add_hosts("node", 2)
    api = ProtocolAPI(cluster, protocol)
    sim = cluster.sim
    done: Dict[str, float] = {}

    def server():
        listener = api.listen("node01", _PORT)
        sock = yield from listener.accept()
        for _ in range(iterations):
            msg = yield from sock.recv_message()
            yield from sock.send_message(msg.size)

    def client():
        sock = api.socket("node00")
        yield from sock.connect(("node01", _PORT))
        t0 = sim.now
        for _ in range(iterations):
            yield from sock.send_message(msg_bytes)
            yield from sock.recv_message()
        done["rtt"] = (sim.now - t0) / iterations

    sim.process(server())
    finished = sim.process(client())
    sim.run(finished)
    return done["rtt"] / 2.0


def _pipelined_stream(protocol: str, msg_bytes: int,
                      n_messages: int = 8) -> float:
    """Seconds from first send to last delivery, messages back to back.

    The saturated case: after the first message the window/credits are
    never all home at once, so the fluid gate mostly stays closed and
    the run degenerates to (correct) packet behaviour — this row
    documents the banded fallback rather than the collapse.
    """
    cluster = Cluster(seed=1)
    cluster.add_fabric("clan")
    cluster.add_fabric("ethernet")
    cluster.add_hosts("node", 2)
    api = ProtocolAPI(cluster, protocol)
    sim = cluster.sim
    done: Dict[str, float] = {}

    def server():
        listener = api.listen("node01", _PORT)
        sock = yield from listener.accept()
        for _ in range(n_messages):
            yield from sock.recv_message()
        done["end"] = sim.now

    def client():
        sock = api.socket("node00")
        yield from sock.connect(("node01", _PORT))
        done["start"] = sim.now
        for _ in range(n_messages):
            yield from sock.send_message(msg_bytes)

    srv = sim.process(server())
    sim.process(client())
    sim.run(srv)
    return done["end"] - done["start"]


def _fan_in(protocol: str, msg_bytes: int,
            senders: int = FAN_IN_SENDERS) -> float:
    """Seconds until every sender's message lands on one receiver.

    All senders fire at t=0, so their transfers share the receiver's
    downlink — in fluid mode via the FlowModel's processor-sharing
    drain, in packet mode via FIFO interleaving.  The two contention
    models agree only approximately (that is the point of the row).
    """
    cluster = Cluster(seed=1)
    cluster.add_fabric("clan")
    cluster.add_fabric("ethernet")
    cluster.add_hosts("node", senders + 1)
    api = ProtocolAPI(cluster, protocol)
    sim = cluster.sim
    done: Dict[str, float] = {}

    def server():
        listener = api.listen("node00", _PORT)
        socks = []
        for _ in range(senders):
            socks.append((yield from listener.accept()))
        # Sequential receives still measure the *latest* arrival:
        # delivery happens in the per-connection stack daemons whether
        # or not a recv is outstanding, so each pop returns at
        # max(previous pops, this message's arrival).
        for sock in socks:
            yield from sock.recv_message()
        done["end"] = sim.now

    def sender(host: str):
        sock = api.socket(host)
        yield from sock.connect(("node00", _PORT))
        yield from sock.send_message(msg_bytes)

    srv = sim.process(server())
    for i in range(senders):
        sim.process(sender(f"node{i + 1:02d}"))
    sim.run(srv)
    return done["end"]


def _measure(driver: Callable[[], float]) -> Tuple[float, float, int, int]:
    """Run *driver* in packet then fluid mode on fresh simulators.

    Returns ``(t_packet, t_fluid, events_packet, events_fluid)``.  The
    explicit :func:`simulation_mode` pins override any ambient
    ``--mode`` / ``REPRO_SIM_MODE``, so the record does not depend on
    how the suite was launched.
    """
    results: Dict[str, Tuple[float, int]] = {}
    for mode in ("packet", "fluid"):
        with simulation_mode(mode):
            before = global_events_processed()
            value = driver()
            results[mode] = (value, global_events_processed() - before)
    return (results["packet"][0], results["fluid"][0],
            results["packet"][1], results["fluid"][1])


def _scenarios(quick: bool) -> List[Tuple[str, int, Callable[[], float]]]:
    sizes = [256 * 1024, LARGE_BYTES] if quick \
        else [256 * 1024, LARGE_BYTES, 4 * LARGE_BYTES]
    rows: List[Tuple[str, int, Callable[[], float]]] = []
    for protocol in ("tcp", "socketvia"):
        for size in sizes:
            rows.append((
                f"{protocol}-oneshot", size,
                lambda p=protocol, s=size: _one_shot_transfer(p, s)))
    stream_n = 4 if quick else 8
    rows.append(("tcp-stream", LARGE_BYTES,
                 lambda n=stream_n: _pipelined_stream(
                     "tcp", LARGE_BYTES, n_messages=n)))
    rows.append(("socketvia-fanin", LARGE_BYTES,
                 lambda: _fan_in("socketvia", LARGE_BYTES)))
    rows.append(("tcp-fanin", LARGE_BYTES,
                 lambda: _fan_in("tcp", LARGE_BYTES)))
    return rows


def fluid_suite(quick: bool = False) -> ExperimentTable:
    """The ``fluid`` panel: packet-vs-fluid fidelity and event economy.

    Meta-panel like ``kernel``/``sweep`` — no point-sweep plan, always
    inline — but unlike those two it records **no** host timings: every
    column is simulated or an event count, so the comparator gates it
    exactly.
    """
    table = ExperimentTable(
        "fluid",
        "Fluid-flow vs packet: transfer fidelity and event economy",
        ["scenario", "msg_bytes", "t_packet_us", "t_fluid_us", "rel_err",
         "events_packet", "events_fluid", "event_ratio"],
    )
    for scenario, msg_bytes, driver in _scenarios(quick):
        t_packet, t_fluid, ev_packet, ev_fluid = _measure(driver)
        rel = abs(t_fluid - t_packet) / t_packet if t_packet else 0.0
        table.add_row(
            scenario, msg_bytes,
            t_packet * 1e6, t_fluid * 1e6, rel,
            ev_packet, ev_fluid,
            ev_packet / ev_fluid if ev_fluid else None)
    table.add_note(
        "each scenario runs twice on identical fresh clusters: once "
        "pinned to packet mode, once pinned to fluid mode")
    table.add_note(
        "oneshot rows are bit-compatible (rel_err ~ float noise); "
        "stream rows stay banded via gate fallback; fanin rows model "
        "downlink contention as processor sharing")
    table.add_note(
        "collapsed transfers occupy the receiving host's kernel/CPU "
        "with their overlapped receive work (Resource.occupy), so "
        "contended scenarios — tcp-fanin's serialized receiver kernel "
        "included — land in band; tcp-fanin remains the closest call")
    table.add_note(
        f"large-transfer economy claims apply at >= {LARGE_BYTES} bytes")
    return table
