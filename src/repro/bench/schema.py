"""The machine-readable benchmark record (``BENCH_<experiment>.json``).

One :class:`BenchRecord` captures everything a benchmark run produced:
the result tables (the same rows the paper plots), the anchor metrics
with their paper-claim deltas, the structural claims, a per-layer trace
summary, and enough provenance (git sha, seed, schema version, wall
time) to interpret the numbers later.

The serialized form is deliberately boring — a single JSON object,
``sort_keys=True``, ``indent=1``, trailing newline — so committed
baselines diff cleanly and re-serialization is byte-stable.  Bump
:data:`SCHEMA_VERSION` whenever a field changes meaning; the loader
rejects versions it does not understand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.records import ExperimentTable

__all__ = ["SCHEMA_VERSION", "BenchRecord", "SchemaError"]

#: Current serialization format.  History: 1 = initial (PR 2);
#: 2 = adds ``events_processed`` (simulation events the run consumed —
#: deterministic, unlike ``wall_time_s``); 3 = adds ``sim_mode`` (the
#: effective simulation mode the run executed under — ``"packet"`` or
#: ``"fluid"`` — so records from different modes can never be compared
#: silently).
SCHEMA_VERSION = 3

#: Versions :meth:`BenchRecord.from_dict` accepts.  Version-1 records
#: load with ``events_processed = None``; pre-3 records load with
#: ``sim_mode = None``.
_SUPPORTED_VERSIONS = (1, 2, 3)

_REQUIRED_KEYS = frozenset({
    "schema_version", "experiment", "title", "git_sha", "seed", "quick",
    "wall_time_s", "tables", "anchors", "claims", "layers", "kinds",
})


class SchemaError(ValueError):
    """A benchmark record failed structural validation."""


@dataclass
class BenchRecord:
    """One benchmark run, ready to persist or compare.

    Attributes
    ----------
    experiment:
        Suite id (``fig04``); the file is named ``BENCH_<experiment>.json``.
    tables:
        Panel id -> :meth:`ExperimentTable.to_dict` payload.
    anchors / claims:
        Serialized :class:`~repro.bench.suites.Anchor` /
        :class:`~repro.bench.suites.Claim` dicts, in extraction order.
    layers / kinds:
        Per-layer and per-trace-kind event counts and time-in-layer
        (seconds of instrumented cost), from the run's trace stream.
    seed:
        Explicit RNG seed, or None for the drivers' built-in defaults.
    events_processed:
        Simulation events consumed across every panel of the run — a
        deterministic cost measure (None in version-1 records).
    sim_mode:
        Effective simulation mode the run executed under (``"packet"``
        or ``"fluid"``; None in pre-version-3 records).  Recorded so a
        fluid-mode run is never compared against a packet baseline
        silently.
    wall_time_s / git_sha:
        ``git_sha`` is provenance only; ``wall_time_s`` is gated
        warn-only by the comparator (>25% drift warns, never fails).
    """

    experiment: str
    title: str
    tables: Dict[str, Dict[str, Any]]
    anchors: List[Dict[str, Any]] = field(default_factory=list)
    claims: List[Dict[str, Any]] = field(default_factory=list)
    layers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    kinds: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    git_sha: str = "unknown"
    seed: Optional[int] = None
    quick: bool = False
    wall_time_s: float = 0.0
    events_processed: Optional[int] = None
    sim_mode: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    # -- structured access ---------------------------------------------------

    def table(self, panel: str) -> ExperimentTable:
        """One panel's table, rebuilt as an :class:`ExperimentTable`."""
        d = self.tables[panel]
        table = ExperimentTable(d["experiment_id"], d["title"], d["columns"])
        for row in d["rows"]:
            table.add_row(*row)
        for note in d["notes"]:
            table.add_note(note)
        return table

    def anchor(self, key: str) -> Dict[str, Any]:
        """One anchor dict by key (KeyError when absent)."""
        for a in self.anchors:
            if a["key"] == key:
                return a
        raise KeyError(f"{self.experiment}: no anchor {key!r}")

    @property
    def anchors_ok(self) -> bool:
        """All paper-tied anchors within tolerance."""
        return all(a["ok"] for a in self.anchors)

    @property
    def claims_ok(self) -> bool:
        """All structural claims hold."""
        return all(c["passed"] for c in self.claims)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "title": self.title,
            "git_sha": self.git_sha,
            "seed": self.seed,
            "quick": self.quick,
            "wall_time_s": self.wall_time_s,
            "events_processed": self.events_processed,
            "sim_mode": self.sim_mode,
            "tables": self.tables,
            "anchors": self.anchors,
            "claims": self.claims,
            "layers": self.layers,
            "kinds": self.kinds,
        }

    def to_json(self) -> str:
        """Canonical serialized form (byte-stable for equal content)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BenchRecord":
        """Validate and rebuild; raises :class:`SchemaError` on bad input."""
        if not isinstance(d, dict):
            raise SchemaError(f"bench record must be an object, got {type(d).__name__}")
        missing = _REQUIRED_KEYS - d.keys()
        if missing:
            raise SchemaError(f"bench record missing keys: {sorted(missing)}")
        version = d["schema_version"]
        if version not in _SUPPORTED_VERSIONS:
            raise SchemaError(
                f"unsupported bench schema version {version!r} "
                f"(supported: {list(_SUPPORTED_VERSIONS)})")
        if not isinstance(d["tables"], dict) or not d["tables"]:
            raise SchemaError("bench record has no result tables")
        for panel, t in d["tables"].items():
            for key in ("experiment_id", "title", "columns", "rows", "notes"):
                if key not in t:
                    raise SchemaError(f"table {panel!r} missing {key!r}")
        return cls(
            experiment=d["experiment"],
            title=d["title"],
            tables=d["tables"],
            anchors=list(d["anchors"]),
            claims=list(d["claims"]),
            layers=dict(d["layers"]),
            kinds=dict(d["kinds"]),
            git_sha=d["git_sha"],
            seed=d["seed"],
            quick=bool(d["quick"]),
            wall_time_s=float(d["wall_time_s"]),
            events_processed=(
                None if d.get("events_processed") is None
                else int(d["events_processed"])),
            sim_mode=d.get("sim_mode"),
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchRecord":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"bench record is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "BenchRecord":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return path
