"""The ``wancache`` suite: block-cache tier + striped WAN transfers.

Two panels (docs/CACHING.md):

* ``wcq`` — query latency over the WAN preset at every cache
  temperature (cold / warm / hot) x stripe width, TCP vs SocketVIA
  side by side, with exact hit rates.  The cache is edge-placed (the
  DPSS arrangement: the edge host is the WAN gateway, so misses are
  striped-fetched storage -> edge and forwarded over the LAN while
  hits skip the WAN entirely).  The headline claim gates the hot/cold
  speedup at >= 3x for SocketVIA at stripe width 4.
* ``wcb`` — bulk striped-read throughput vs stripe width on the
  high-BDP link, no cache tier.  Each cell carries its order-sensitive
  reassembly digest; the reassembly claim pins every cell's digest to
  the width-1 (unstriped) digest — striping changes wall clock, never
  bytes.

Both panels decompose into cache-addressable points exactly like the
figure sweeps, so ``bench run wancache --jobs N`` parallelizes per
cell and reruns are cache hits.  Every metric is simulated (latency,
MB/s of simulated time) or exact bookkeeping (hit rates, digests) —
no wall-clock columns — so the comparator gates the whole record.
"""

from __future__ import annotations

from typing import Any, List

from repro.apps.wancache import (
    WanBulkConfig,
    WanCacheConfig,
    run_wan_bulk,
    run_wan_queries,
)
from repro.bench.executor import Point, PointPlan
from repro.bench.records import ExperimentTable

__all__ = [
    "wcq_cell",
    "wcb_cell",
    "wcq_sweep",
    "wcb_sweep",
    "wcq_points",
    "wcb_points",
    "WANCACHE_TEMPERATURES",
    "WANCACHE_WIDTHS",
    "WANCACHE_BULK_WIDTHS",
    "WANCACHE_SEED",
]

#: Cache temperatures of the query panel, coldest first.
WANCACHE_TEMPERATURES = ("cold", "warm", "hot")
#: Stripe widths of the query panel.
WANCACHE_WIDTHS = (1, 4, 8)
#: Stripe widths of the bulk panel.
WANCACHE_BULK_WIDTHS = (1, 2, 4, 8)
#: Query panel dataset: 64 x 64 KiB blocks, 6 x 8-block queries.
WANCACHE_BLOCKS = 64
WANCACHE_BLOCK_BYTES = 64 * 1024
WANCACHE_BLOCKS_PER_QUERY = 8
WANCACHE_QUERIES = 6
#: Bulk panel dataset: 64 x 256 KiB blocks (16 MiB per transfer).
WANCACHE_BULK_BLOCKS = 64
WANCACHE_BULK_BLOCK_BYTES = 256 * 1024
WANCACHE_SEED = 13

_PROTOCOLS = ("socketvia", "tcp")

_WCQ_NOTE = (
    "edge-placed cache (DPSS arrangement): misses are striped-fetched "
    "storage -> edge over the ~30 ms-RTT OC-12 WAN and forwarded over "
    "the LAN; hits never touch the WAN — hit rates are exact counts "
    "from the BlockCache, deterministic per cell"
)
_WCB_NOTE = (
    "one striped read of the whole block space; digest is the "
    "order-sensitive reassembly digest — equal digests mean the "
    "reassembled sequence is bit-identical to the unstriped path"
)


def wcq_cell(protocol: str, temperature: str, stripe: int,
             placement: str, n_blocks: int, block_bytes: int,
             blocks_per_query: int, n_queries: int,
             seed: int) -> List[float]:
    """Point: one (protocol, temperature, stripe-width) query run.

    Returns ``[mean_ms, p50_ms, hit_rate]``.
    """
    result = run_wan_queries(WanCacheConfig(
        protocol=protocol,
        temperature=temperature,
        stripe_width=int(stripe),
        placement=placement,
        n_blocks=int(n_blocks),
        block_bytes=int(block_bytes),
        blocks_per_query=int(blocks_per_query),
        n_queries=int(n_queries),
        seed=int(seed),
    ))
    return [
        float(result.mean_latency * 1e3),
        float(result.p50_latency * 1e3),
        float(result.hit_rate),
    ]


def wcb_cell(protocol: str, stripe: int, n_blocks: int,
             block_bytes: int, seed: int) -> List[Any]:
    """Point: one (protocol, stripe-width) bulk transfer.

    Returns ``[mb_per_s, digest]`` — the digest rides along so the
    reassembly claim can gate bit-identity from the cached record.
    """
    result = run_wan_bulk(WanBulkConfig(
        protocol=protocol,
        stripe_width=int(stripe),
        n_blocks=int(n_blocks),
        block_bytes=int(block_bytes),
        seed=int(seed),
    ))
    return [float(result.mb_per_s), result.digest]


def _wcq_table() -> ExperimentTable:
    return ExperimentTable(
        "wcq",
        "WAN query latency vs cache temperature and stripe width",
        ["temperature", "stripe",
         "SocketVIA_mean_ms", "TCP_mean_ms",
         "SocketVIA_p50_ms", "TCP_p50_ms",
         "SocketVIA_hit_rate", "TCP_hit_rate"],
    )


def _wcb_table() -> ExperimentTable:
    return ExperimentTable(
        "wcb",
        "Bulk striped-read throughput vs stripe width (high-BDP WAN)",
        ["stripe",
         "SocketVIA_MBps", "TCP_MBps",
         "SocketVIA_digest", "TCP_digest"],
    )


def _wcq_axis(temperatures, widths):
    return [(t, int(w)) for t in temperatures for w in widths]


def _wcq_row(temp: str, width: int, sv: List[float],
             tcp: List[float]) -> List[Any]:
    return [temp, width, sv[0], tcp[0], sv[1], tcp[1], sv[2], tcp[2]]


def wcq_sweep(
    temperatures=WANCACHE_TEMPERATURES,
    widths=WANCACHE_WIDTHS,
    placement: str = "edge",
    n_blocks: int = WANCACHE_BLOCKS,
    block_bytes: int = WANCACHE_BLOCK_BYTES,
    blocks_per_query: int = WANCACHE_BLOCKS_PER_QUERY,
    n_queries: int = WANCACHE_QUERIES,
    seed: int = WANCACHE_SEED,
) -> ExperimentTable:
    """The ``wcq`` panel, serial path."""
    axis = _wcq_axis(temperatures, widths)
    table = _wcq_table()
    for temp, width in axis:
        cells = {
            proto: wcq_cell(proto, temp, width, placement, n_blocks,
                            block_bytes, blocks_per_query, n_queries, seed)
            for proto in _PROTOCOLS
        }
        table.add_row(*_wcq_row(temp, width,
                                cells["socketvia"], cells["tcp"]))
    table.add_note(_WCQ_NOTE)
    return table


def wcq_points(
    temperatures=WANCACHE_TEMPERATURES,
    widths=WANCACHE_WIDTHS,
    placement: str = "edge",
    n_blocks: int = WANCACHE_BLOCKS,
    block_bytes: int = WANCACHE_BLOCK_BYTES,
    blocks_per_query: int = WANCACHE_BLOCKS_PER_QUERY,
    n_queries: int = WANCACHE_QUERIES,
    seed: int = WANCACHE_SEED,
) -> PointPlan:
    """``wcq`` as one point per (temperature, stripe, protocol)."""
    axis = _wcq_axis(temperatures, widths)
    points = [
        Point("wcq", "wcq_cell",
              {"protocol": proto, "temperature": temp, "stripe": width,
               "placement": placement, "n_blocks": int(n_blocks),
               "block_bytes": int(block_bytes),
               "blocks_per_query": int(blocks_per_query),
               "n_queries": int(n_queries), "seed": int(seed)})
        for temp, width in axis
        for proto in _PROTOCOLS
    ]

    def merge(values: List[Any]) -> ExperimentTable:
        table = _wcq_table()
        for i, (temp, width) in enumerate(axis):
            sv, tcp = values[2 * i], values[2 * i + 1]
            table.add_row(*_wcq_row(temp, width, sv, tcp))
        table.add_note(_WCQ_NOTE)
        return table

    return PointPlan("wcq", points, merge)


def wcb_sweep(
    widths=WANCACHE_BULK_WIDTHS,
    n_blocks: int = WANCACHE_BULK_BLOCKS,
    block_bytes: int = WANCACHE_BULK_BLOCK_BYTES,
    seed: int = WANCACHE_SEED,
) -> ExperimentTable:
    """The ``wcb`` panel, serial path."""
    widths = [int(w) for w in widths]
    table = _wcb_table()
    for width in widths:
        cells = {
            proto: wcb_cell(proto, width, n_blocks, block_bytes, seed)
            for proto in _PROTOCOLS
        }
        table.add_row(width, cells["socketvia"][0], cells["tcp"][0],
                      cells["socketvia"][1], cells["tcp"][1])
    table.add_note(_WCB_NOTE)
    return table


def wcb_points(
    widths=WANCACHE_BULK_WIDTHS,
    n_blocks: int = WANCACHE_BULK_BLOCKS,
    block_bytes: int = WANCACHE_BULK_BLOCK_BYTES,
    seed: int = WANCACHE_SEED,
) -> PointPlan:
    """``wcb`` as one point per (stripe, protocol)."""
    widths = [int(w) for w in widths]
    points = [
        Point("wcb", "wcb_cell",
              {"protocol": proto, "stripe": width,
               "n_blocks": int(n_blocks),
               "block_bytes": int(block_bytes), "seed": int(seed)})
        for width in widths
        for proto in _PROTOCOLS
    ]

    def merge(values: List[Any]) -> ExperimentTable:
        table = _wcb_table()
        for i, width in enumerate(widths):
            sv, tcp = values[2 * i], values[2 * i + 1]
            table.add_row(width, sv[0], tcp[0], sv[1], tcp[1])
        table.add_note(_WCB_NOTE)
        return table

    return PointPlan("wcb", points, merge)
