"""Benchmark suite definitions: figures, anchors, and claims.

This module is the single source of truth for *what* the harness runs
and *how* a run is judged:

* :data:`FIGURES` — one callable per paper figure panel (moved here
  from the CLI so ``python -m repro figure``, ``python -m repro bench``
  and the pytest benchmarks all execute the same drivers);
* :class:`Anchor` — a scalar metric extracted from the result tables,
  optionally tied to a number the paper publishes (with a relative
  tolerance);
* :class:`Claim` — a structural pass/fail statement the paper makes
  (orderings, monotonicity, crossovers);
* :class:`BenchSuite` — groups the panels of one experiment
  (``fig04`` = panels 4a + 4b) with its anchor/claim extractors.

The pytest benchmarks under ``benchmarks/`` are thin adapters over
these extractors, and ``repro.bench.runner`` persists their output —
one implementation, two front ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.records import ExperimentTable, ratio

__all__ = [
    "FIGURES",
    "PLANS",
    "RUNTIME_HINT",
    "Anchor",
    "Claim",
    "BenchSuite",
    "SUITES",
    "get_suite",
    "suite_names",
]


def _panel_specs() -> Dict[str, tuple]:
    """Panel id -> ``(serial driver, point-plan factory, base kwargs,
    quick kwargs)``.

    One table backs both :data:`FIGURES` (the serial drivers) and
    :data:`PLANS` (the sweep decompositions the executor runs), so the
    quick axes can never diverge between the two paths.
    """
    from repro.bench import figures as f
    from repro.bench import servebench as sb
    from repro.bench import tailsbench as tb
    from repro.bench import wancachebench as wb

    return {
        # fig2 is a closed-form model evaluation with no sweep axes, so
        # it is exempt from quick mode by design: quick and full runs
        # produce the same (instant) table.  Audited by
        # tests/test_bench_executor.py::test_fig2_quick_equals_full.
        "2": (f.fig2_message_size_economics, f.fig2_points, {}, {}),
        "4a": (f.fig4a_latency, f.fig4a_points, {},
               {"sizes": [4, 256, 4096]}),
        "4b": (f.fig4b_bandwidth, f.fig4b_points, {},
               {"sizes": [2048, 16384, 65536]}),
        "7a": (f.fig7_update_rate_guarantee, f.fig7_points,
               {"compute_ns_per_byte": 0.0},
               {"rates": [4.0, 3.25, 2.0], "frames": 2}),
        "7b": (f.fig7_update_rate_guarantee, f.fig7_points,
               {"compute_ns_per_byte": 18.0},
               {"rates": [3.25, 2.0], "frames": 2}),
        "8a": (f.fig8_latency_guarantee, f.fig8_points,
               {"compute_ns_per_byte": 0.0},
               {"bounds_us": [1000, 400, 100], "frames": 2}),
        "8b": (f.fig8_latency_guarantee, f.fig8_points,
               {"compute_ns_per_byte": 18.0},
               {"bounds_us": [1000, 400, 200], "frames": 2}),
        "9a": (f.fig9_query_mix, f.fig9_points,
               {"compute_ns_per_byte": 0.0},
               {"fractions": [0.0, 0.6, 1.0], "n_queries": 6}),
        "9b": (f.fig9_query_mix, f.fig9_points,
               {"compute_ns_per_byte": 18.0},
               {"fractions": [0.0, 1.0], "n_queries": 6}),
        "10": (f.fig10_rr_reaction, f.fig10_points, {},
               {"factors": [2, 10], "total_bytes": 4 * 1024 * 1024}),
        "11": (f.fig11_dd_heterogeneity, f.fig11_points, {},
               {"probabilities": [0.1, 0.9], "factors": [2, 8],
                "total_bytes": 2 * 1024 * 1024}),
        # Chaos panels: Figures 8 and 11 re-measured under the named
        # fault plans in repro.faults.presets, fault-free legs side by
        # side (those reuse the plain fig8/fig11 points, sharing their
        # cache entries).
        "c8": (f.chaos8_update_rate, f.chaos8_points,
               {"compute_ns_per_byte": 18.0},
               {"bounds_us": [1000, 200], "frames": 2}),
        "c11": (f.chaos11_crash_recovery, f.chaos11_points, {},
                {"probabilities": [0.1, 0.9],
                 "total_bytes": 2 * 1024 * 1024}),
        # Serving panels (repro.bench.servebench): open-loop capacity
        # vs offered load, and per-query event-cost flatness vs
        # cluster width.  Quick mode shrinks the cluster and horizon —
        # CI's serve-smoke job runs exactly those axes.
        "serve": (sb.serve_load_sweep, sb.serve_points, {},
                  {"hosts": 64, "rates": [200.0, 800.0],
                   "bursty_rates": [800.0], "horizon": 0.02}),
        # Quick widths start at 32 hosts: narrower clusters amortize
        # the per-shard setup over too few queries for the flatness
        # claim to be meaningful at a short horizon.
        "serve_scale": (sb.serve_scale_sweep, sb.serve_scale_points, {},
                        {"hosts_axis": [32, 64], "horizon": 0.03}),
        # WAN block-cache panels (repro.bench.wancachebench): query
        # latency vs cache temperature x stripe width, and bulk striped
        # throughput vs width.  Quick mode drops the warm temperature
        # and the widest stripes and shrinks the dataset — CI's
        # wancache-smoke job runs exactly those axes.
        # Quick keeps blocks_per_query at 8: a query must overflow one
        # stream's flow-control window (256 KiB) or striping has
        # nothing to recover and the striping claim loses its margin.
        "wcq": (wb.wcq_sweep, wb.wcq_points, {},
                {"temperatures": ["cold", "hot"], "widths": [1, 4],
                 "n_blocks": 32, "n_queries": 3}),
        "wcb": (wb.wcb_sweep, wb.wcb_points, {},
                {"widths": [1, 4], "n_blocks": 24,
                 "block_bytes": 128 * 1024}),
        # Replicated-dispatch panels (repro.bench.tailsbench): latency
        # percentiles and the cost/conservation ledger per fault plan x
        # replication factor.  Both panels share one point per cell, so
        # tlc resolves from tls's cache entries.  Quick mode drops k=3
        # and shrinks the query schedule — CI's tails-smoke job runs
        # exactly those axes; the straggler preset's fault windows
        # repeat every 25 ms, so the quick horizon (~37 ms) still sees
        # both straggler mechanisms.
        "tls": (tb.tls_sweep, tb.tls_points, {},
                {"ks": [1, 2], "n_queries": 120}),
        "tlc": (tb.tlc_sweep, tb.tlc_points, {},
                {"ks": [1, 2], "n_queries": 120}),
    }


def _figures() -> Dict[str, Callable]:
    from repro.bench import executor as x
    from repro.bench import microbench as m

    def serial(fn, base, quick_kwargs):
        return lambda quick: fn(**base, **(quick_kwargs if quick else {}))

    registry = {
        panel: serial(fn, base, quick_kwargs)
        for panel, (fn, _plan, base, quick_kwargs) in _panel_specs().items()
    }
    # Meta-suites: not figure sweeps themselves, so they run inline
    # (no point plan) — the kernel suite times the host, the sweep
    # suite times the executor.
    registry["kernel"] = lambda quick: m.kernel_suite(quick)
    registry["queues"] = lambda quick: m.queue_backend_suite(quick)
    registry["sweep"] = lambda quick: x.sweep_benchmark(quick)

    def fluid(quick):
        from repro.bench import fluidbench as fb
        return fb.fluid_suite(quick)

    registry["fluid"] = fluid

    def serve_par(quick):
        from repro.bench import servebench as sb
        return sb.serve_parallel_benchmark(quick)

    registry["serve_par"] = serve_par
    return registry


def _plans() -> Dict[str, Optional[Callable]]:
    def plan(fn, base, quick_kwargs):
        return lambda quick: fn(**base, **(quick_kwargs if quick else {}))

    return {
        panel: plan(plan_fn, base, quick_kwargs)
        for panel, (_fn, plan_fn, base, quick_kwargs) in _panel_specs().items()
    }


class _LazyRegistry(dict):
    """Panel registry that defers the (heavy) driver imports."""

    def __init__(self, filler: Callable[[], dict]) -> None:
        super().__init__()
        self._filler = filler

    def _fill(self) -> None:
        if not super().__len__():
            super().update(self._filler())

    def __getitem__(self, key):
        self._fill()
        return super().__getitem__(key)

    def __contains__(self, key):
        self._fill()
        return super().__contains__(key)

    def __iter__(self):
        self._fill()
        return super().__iter__()

    def __len__(self):
        self._fill()
        return super().__len__()

    def get(self, key, default=None):
        self._fill()
        return super().get(key, default)

    def keys(self):
        self._fill()
        return super().keys()

    def items(self):
        self._fill()
        return super().items()


#: Panel id -> serial driver callable taking one ``quick`` flag.
FIGURES: Dict[str, Callable] = _LazyRegistry(_figures)

#: Panel id -> point-plan factory taking one ``quick`` flag.  Panels
#: absent here (``kernel``, ``sweep``) have no sweep decomposition and
#: always run inline/serial, uncached (they measure the host).
PLANS: Dict[str, Callable] = _LazyRegistry(_plans)

#: Rough full-axis runtimes, shown by the ``list`` commands.
RUNTIME_HINT = {
    "2": "instant", "4a": "~1 s", "4b": "~1 s", "7a": "~30 s",
    "7b": "~30 s", "8a": "~20 s", "8b": "~20 s", "9a": "~30 s",
    "9b": "~30 s", "10": "~1 s", "11": "~4 s", "c8": "~30 s",
    "c11": "~10 s", "kernel": "~5 s", "queues": "~30 s",
    "sweep": "~2 min", "fluid": "~5 s", "serve": "~1 min",
    "serve_scale": "~30 s", "serve_par": "~2 min",
    "wcq": "~30 s", "wcb": "~15 s", "tls": "~10 s", "tlc": "~1 s",
}


@dataclass(frozen=True)
class Anchor:
    """One scalar metric extracted from a run.

    ``paper`` and ``rel_tol`` are set when the paper publishes the
    number; :attr:`ok` then states whether the measurement lands within
    the tolerance band.  Anchors without a paper value are tracked for
    baseline regressions only.
    """

    key: str
    description: str
    measured: Optional[float]
    group: str  # panel id the metric comes from (e.g. "4a")
    unit: str = ""
    paper: Optional[float] = None
    rel_tol: Optional[float] = None

    @property
    def delta_rel(self) -> Optional[float]:
        """Relative deviation from the paper value (None when untied)."""
        if self.paper in (None, 0) or self.measured is None:
            return None
        return (self.measured - self.paper) / abs(self.paper)

    @property
    def ok(self) -> bool:
        """Within tolerance of the paper value (True when untied)."""
        if self.paper is None or self.rel_tol is None:
            return self.measured is not None
        if self.measured is None:
            return False
        return abs(self.measured - self.paper) <= self.rel_tol * abs(self.paper)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "description": self.description,
            "measured": self.measured,
            "group": self.group,
            "unit": self.unit,
            "paper": self.paper,
            "rel_tol": self.rel_tol,
            "delta_rel": self.delta_rel,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class Claim:
    """One structural statement from the paper, checked against a run."""

    key: str
    description: str
    passed: bool
    group: str

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "description": self.description,
            "passed": self.passed,
            "group": self.group,
        }


Extractor = Callable[[Dict[str, ExperimentTable]], List]


@dataclass(frozen=True)
class BenchSuite:
    """One benchmark experiment: its panels and how to judge a run."""

    bench_id: str
    title: str
    panels: Tuple[str, ...]
    anchors: Extractor = field(default=lambda tables: [])
    claims: Extractor = field(default=lambda tables: [])

    @property
    def runtime_hint(self) -> str:
        return " + ".join(RUNTIME_HINT.get(p, "?") for p in self.panels)


def _cell(table: ExperimentTable, key_col: str, key, value_col: str):
    """Table cell lookup by row key; None when the row is absent."""
    try:
        idx = table.column(key_col).index(key)
    except ValueError:
        return None
    return table.rows[idx][table.columns.index(value_col)]


# ---------------------------------------------------------------------------
# fig02 — message-size economics
# ---------------------------------------------------------------------------


def _fig02_values(table: ExperimentTable) -> Dict[str, float]:
    return dict(zip(table.column("quantity"), table.column("value")))


def _fig02_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    table = tables.get("2")
    if table is None:
        return []
    v = _fig02_values(table)

    def mk(key, desc, quantity, unit):
        return Anchor(key, desc, v.get(quantity), group="2", unit=unit)

    return [
        mk("u1_bytes", "U1: kernel-sockets message size for B",
           "U1 (kernel sockets size for B, bytes)", "B"),
        mk("u2_bytes", "U2: high-perf substrate size for B",
           "U2 (high-perf substrate size for B, bytes)", "B"),
        mk("l1_us", "L1: kernel latency at U1",
           "L1 = kernel latency at U1 (us)", "us"),
        mk("l2_us", "L2: substrate latency at U1",
           "L2 = substrate latency at U1 (us)", "us"),
        mk("l3_us", "L3: substrate latency at U2",
           "L3 = substrate latency at U2 (us)", "us"),
    ]


def _fig02_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    table = tables.get("2")
    if table is None:
        return []
    v = _fig02_values(table)
    u1 = v["U1 (kernel sockets size for B, bytes)"]
    u2 = v["U2 (high-perf substrate size for B, bytes)"]
    l1 = v["L1 = kernel latency at U1 (us)"]
    l2 = v["L2 = substrate latency at U1 (us)"]
    l3 = v["L3 = substrate latency at U2 (us)"]
    return [
        Claim("u2_much_smaller_than_u1",
              "U2 << U1 (repartitioning has room to shrink messages)",
              u2 < u1 / 4, "2"),
        Claim("latency_staircase",
              "L3 < L2 < L1 (direct then indirect improvement)",
              l3 < l2 < l1, "2"),
        Claim("total_improvement_over_10x",
              "L1/L3 > 10 (combined improvement exceeds an order of magnitude)",
              l1 / l3 > 10, "2"),
    ]


# ---------------------------------------------------------------------------
# fig04 — micro-benchmarks (the calibrated anchors)
# ---------------------------------------------------------------------------


def _fig04_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    from repro.net import PAPER_MICROBENCH

    anchors: List[Anchor] = []
    lat = tables.get("4a")
    if lat is not None:
        sv = _cell(lat, "msg_bytes", 4, "SocketVIA")
        tcp = _cell(lat, "msg_bytes", 4, "TCP")
        via = _cell(lat, "msg_bytes", 4, "VIA")
        anchors += [
            Anchor("socketvia_latency_4b_us", "SocketVIA 4-byte latency",
                   sv, group="4a", unit="us",
                   paper=PAPER_MICROBENCH["socketvia_latency_4b_us"],
                   rel_tol=0.05),
            Anchor("tcp_over_socketvia_latency",
                   "TCP / SocketVIA latency ratio (4 B)",
                   ratio(tcp, sv), group="4a", unit="x",
                   paper=PAPER_MICROBENCH["tcp_latency_over_socketvia"],
                   rel_tol=0.10),
            Anchor("via_latency_4b_us", "raw VIA 4-byte latency",
                   via, group="4a", unit="us"),
        ]
    bw = tables.get("4b")
    if bw is not None:
        def peak(col):
            return _cell(bw, "msg_bytes", 65536, col)

        def at2k(col):
            return _cell(bw, "msg_bytes", 2048, col)

        anchors += [
            Anchor("via_peak_mbps", "VIA peak bandwidth (64 KB)",
                   peak("VIA"), group="4b", unit="Mbps",
                   paper=PAPER_MICROBENCH["via_peak_mbps"], rel_tol=0.05),
            Anchor("socketvia_peak_mbps", "SocketVIA peak bandwidth (64 KB)",
                   peak("SocketVIA"), group="4b", unit="Mbps",
                   paper=PAPER_MICROBENCH["socketvia_peak_mbps"],
                   rel_tol=0.05),
            Anchor("tcp_peak_mbps", "TCP peak bandwidth (64 KB)",
                   peak("TCP"), group="4b", unit="Mbps",
                   paper=PAPER_MICROBENCH["tcp_peak_mbps"], rel_tol=0.05),
            Anchor("socketvia_2k_fraction_of_peak",
                   "SocketVIA bandwidth at 2 KB / its peak",
                   ratio(at2k("SocketVIA"), peak("SocketVIA")),
                   group="4b", unit="frac"),
            Anchor("tcp_2k_fraction_of_peak",
                   "TCP bandwidth at 2 KB / its peak",
                   ratio(at2k("TCP"), peak("TCP")), group="4b", unit="frac"),
        ]
    return anchors


def _fig04_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    claims: List[Claim] = []
    lat = tables.get("4a")
    if lat is not None:
        via = _cell(lat, "msg_bytes", 4, "VIA")
        sv = _cell(lat, "msg_bytes", 4, "SocketVIA")
        tcp = _cell(lat, "msg_bytes", 4, "TCP")
        claims.append(Claim(
            "latency_ordering", "VIA < SocketVIA < TCP at 4 bytes",
            via < sv < tcp, "4a"))
        monotone = all(
            lat.column(col) == sorted(lat.column(col))
            for col in ("VIA", "SocketVIA", "TCP"))
        claims.append(Claim(
            "latency_monotone", "latency grows with message size, every series",
            monotone, "4a"))
    bw = tables.get("4b")
    if bw is not None:
        sv2k = _cell(bw, "msg_bytes", 2048, "SocketVIA")
        svp = _cell(bw, "msg_bytes", 65536, "SocketVIA")
        tcp2k = _cell(bw, "msg_bytes", 2048, "TCP")
        tcpp = _cell(bw, "msg_bytes", 65536, "TCP")
        claims += [
            Claim("socketvia_near_peak_at_2k",
                  "SocketVIA within 10% of peak at 2 KB (U2)",
                  sv2k > 0.9 * svp, "4b"),
            Claim("tcp_far_from_peak_at_2k",
                  "TCP below 75% of peak at 2 KB (needs U1 ~ 16 KB)",
                  tcp2k < 0.75 * tcpp, "4b"),
        ]
    return claims


# ---------------------------------------------------------------------------
# fig10 — round-robin reaction time
# ---------------------------------------------------------------------------


def _fig10_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    from repro.net import PAPER_RESULTS

    table = tables.get("10")
    if table is None:
        return []
    anchors = []
    for factor, r in zip(table.column("factor"),
                         table.column("ratio_tcp_over_sv")):
        anchors.append(Anchor(
            f"reaction_ratio_factor_{factor}",
            f"TCP/SocketVIA reaction-time ratio at heterogeneity {factor}",
            r, group="10", unit="x",
            paper=PAPER_RESULTS["fig10_reaction_ratio"], rel_tol=0.15))
    return anchors


def _fig10_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    table = tables.get("10")
    if table is None:
        return []
    sv = table.column("SocketVIA")
    tcp = table.column("TCP")
    return [
        Claim("reaction_grows_with_factor",
              "reaction time grows with the heterogeneity factor",
              sv == sorted(sv) and tcp == sorted(tcp), "10"),
        Claim("socketvia_reacts_faster",
              "SocketVIA reacts faster than TCP at every factor",
              all(s < t for s, t in zip(sv, tcp)), "10"),
    ]


# ---------------------------------------------------------------------------
# fig11 — demand-driven scheduling under dynamic slowdown
# ---------------------------------------------------------------------------


def _fig11_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    table = tables.get("11")
    if table is None:
        return []
    sv_cols = [c for c in table.columns if c.startswith("SocketVIA")]
    tcp_cols = [c for c in table.columns if c.startswith("TCP")]
    close = all(
        abs(t - s) / s < 0.15
        for sc, tc in zip(sv_cols, tcp_cols)
        for s, t in zip(table.column(sc), table.column(tc)))
    rising = all(
        table.column(c)[0] < table.column(c)[-1]
        for c in sv_cols + tcp_cols)
    return [
        Claim("tcp_tracks_socketvia",
              "TCP within 15% of SocketVIA under demand-driven scheduling",
              close, "11"),
        Claim("time_rises_with_p_slow",
              "execution time rises with P(slow), every series",
              rising, "11"),
    ]


# ---------------------------------------------------------------------------
# chaos — Figures 8 and 11 under calibrated fault plans (not a paper
# figure; gates the fault-injection and resilience machinery in
# repro.faults, see docs/RESILIENCE.md)
# ---------------------------------------------------------------------------


def _chaos_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    anchors: List[Anchor] = []
    c8 = tables.get("c8")
    if c8 is not None:
        # Bound 1000 us is on both the full and --quick axes.
        for proto in ("TCP", "SocketVIA"):
            base = _cell(c8, "latency_us", 1000, proto)
            chaos = _cell(c8, "latency_us", 1000, f"{proto}_chaos")
            anchors.append(Anchor(
                f"chaos8_{proto.lower()}_rate_retention",
                f"{proto} update rate under chaos-fig8 / fault-free "
                "(1000 us bound)",
                ratio(chaos, base), group="c8", unit="frac"))
    c11 = tables.get("c11")
    if c11 is not None:
        # P(slow)=10% is on both the full and --quick axes.
        anchors += [
            Anchor("chaos11_sv_crash_overhead",
                   "SocketVIA execution time with worker crash+restart / "
                   "fault-free (P(slow)=0.1)",
                   ratio(_cell(c11, "prob_slow_pct", 10, "SocketVIA_chaos"),
                         _cell(c11, "prob_slow_pct", 10, "SocketVIA")),
                   group="c11", unit="x"),
            Anchor("chaos11_sv_crashed_share",
                   "share of blocks the crashed worker still processed "
                   "(SocketVIA, P(slow)=0.1)",
                   _cell(c11, "prob_slow_pct", 10, "sv_crashed_share"),
                   group="c11", unit="frac"),
        ]
    return anchors


def _chaos_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    claims: List[Claim] = []
    c8 = tables.get("c8")
    if c8 is not None:
        cells = [
            (base, chaos)
            for proto in ("TCP", "SocketVIA")
            for base, chaos in zip(c8.column(proto),
                                   c8.column(f"{proto}_chaos"))
            if base is not None and chaos is not None
        ]
        claims += [
            Claim("chaos8_faults_degrade_rate",
                  "fault injection lowers the measured update rate, "
                  "every cell",
                  all(chaos < base for base, chaos in cells), "c8"),
            Claim("chaos8_degradation_bounded",
                  "chaos keeps at least half the fault-free update rate "
                  "(graceful degradation, not collapse)",
                  all(chaos >= 0.5 * base for base, chaos in cells), "c8"),
        ]
    c11 = tables.get("c11")
    if c11 is not None:
        pairs = [
            (base, chaos)
            for proto in ("SocketVIA", "TCP")
            for base, chaos in zip(c11.column(proto),
                                   c11.column(f"{proto}_chaos"))
        ]
        shares = c11.column("sv_crashed_share") + c11.column("tcp_crashed_share")
        # Crashed vs peer, not vs the fair share 1/n: the crashed worker
        # and its healthy peer gain from the slow node's slowness
        # symmetrically, so only the crash separates their shares.
        share_pairs = [
            (crashed, peer)
            for p in ("sv", "tcp")
            for crashed, peer in zip(c11.column(f"{p}_crashed_share"),
                                     c11.column(f"{p}_peer_share"))
        ]
        claims += [
            Claim("chaos11_crash_overhead_bounded",
                  "worker crash+restart costs time but never doubles it "
                  "(demand-driven rescheduling absorbs the outage)",
                  all(base < chaos <= 2 * base for base, chaos in pairs),
                  "c11"),
            Claim("chaos11_dd_routes_around_crash",
                  "the crashed worker processes fewer blocks than its "
                  "healthy peer at every P(slow)",
                  all(crashed < peer for crashed, peer in share_pairs),
                  "c11"),
            Claim("chaos11_crashed_worker_rejoins",
                  "the crashed worker keeps a substantial share of blocks "
                  "at every P(slow) (it rejoined at restart)",
                  all(0.2 < s < 0.5 for s in shares), "c11"),
        ]
    return claims


# ---------------------------------------------------------------------------
# kernel — simulation-kernel throughput (not a paper figure; gates the
# event-loop fast path that every figure reproduction runs on)
# ---------------------------------------------------------------------------


def _queues_rows(table: ExperimentTable) -> List[Dict]:
    return [dict(zip(table.columns, row)) for row in table.rows]


def _kernel_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    anchors: List[Anchor] = []
    table = tables.get("kernel")
    if table is not None:
        idx = table.column("workload").index("TOTAL")
        total_events = table.column("events")[idx]
        heap_peak = max(table.column("heap_peak"))
        eps = table.column("events_per_sec")[idx]
        pool_hits = table.column("pool_hits")[idx]
        compactions = table.column("compactions")[idx]
        anchors += [
            Anchor("kernel_total_events",
                   "useful events processed across all workloads "
                   "(deterministic)",
                   float(total_events), group="kernel", unit="events"),
            Anchor("kernel_heap_peak",
                   "largest event heap any workload reached (deterministic)",
                   float(heap_peak), group="kernel", unit="entries"),
            Anchor("kernel_pool_hits",
                   "events served from the timeout/event free lists "
                   "(deterministic)",
                   float(pool_hits), group="kernel", unit="events"),
            Anchor("kernel_compactions",
                   "tombstone compaction sweeps across all workloads "
                   "(deterministic)",
                   float(compactions), group="kernel", unit="sweeps"),
            Anchor("events_per_sec",
                   "aggregate kernel throughput (host-dependent, gated "
                   "warn-only)",
                   float(eps), group="kernel", unit="events/s"),
        ]
    queues = tables.get("queues")
    if queues is not None:
        rows = _queues_rows(queues)
        flood_cal = next((r for r in rows
                          if r["workload"] == "timer_flood"
                          and r["backend"] == "calendar"), None)
        if flood_cal is not None:
            # Dotted key: the comparator gates the trailing
            # "speedup_calendar" component warn-only (host timing).
            anchors += [
                Anchor("timer_flood.speedup_calendar",
                       "calendar-over-heap throughput ratio on the timer "
                       "flood (host-dependent, gated warn-only)",
                       None if flood_cal["speedup_calendar"] is None
                       else float(flood_cal["speedup_calendar"]),
                       group="queues", unit="x"),
                Anchor("queues_flood_promotions",
                       "calendar bucket promotions while draining the "
                       "flood (deterministic)",
                       float(flood_cal["promotions"]),
                       group="queues", unit="promotions"),
            ]
    return anchors


def _kernel_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    claims: List[Claim] = []
    table = tables.get("kernel")
    if table is not None:
        names = table.column("workload")
        events = dict(zip(names, table.column("events")))
        expected = dict(zip(names, table.column("expected_events")))
        exact = all(events[w] == expected[w] for w in names)
        claims += [
            Claim("event_counts_exact",
                  "every workload processed exactly its closed-form event "
                  "count (cancelled timers contributed zero fired events)",
                  exact, "kernel"),
            Claim("wheel_cancellation_lazy",
                  "timer-wheel fires only the surviving timer per connection "
                  "despite ~10x as many scheduled-then-cancelled",
                  events.get("timer_wheel") == expected.get("timer_wheel"),
                  "kernel"),
            Claim("cancelled_deadlines_never_fire",
                  "deadline-cancel workload processed only its live "
                  "survivors",
                  events.get("timer_cancel") == expected.get("timer_cancel"),
                  "kernel"),
        ]
    queues = tables.get("queues")
    if queues is not None:
        from repro.bench.microbench import FLOOD_FULL_N

        rows = _queues_rows(queues)
        by_workload: Dict[str, Dict[str, Dict]] = {}
        for r in rows:
            by_workload.setdefault(r["workload"], {})[r["backend"]] = r
        identical = all(
            len({b["events"] for b in backends.values()}) == 1
            and all(b["events"] == b["expected_events"]
                    for b in backends.values())
            for backends in by_workload.values())
        flood = by_workload.get("timer_flood", {}).get("calendar")
        flood_n = flood["events"] if flood else 0
        speedup = flood["speedup_calendar"] if flood else None
        claims += [
            Claim("queue_backends_event_identical",
                  "every backend processes exactly the closed-form event "
                  "count on every queue workload (dequeue order proven "
                  "heapq-exact by tests/test_sim_queues.py)",
                  identical, "queues"),
            Claim("calendar_flood_speedup_when_population_allows",
                  "calendar backend >= 1.3x heap events/s on the timer "
                  "flood (vacuous below the full-axis population of "
                  f"{FLOOD_FULL_N} pending timers, where C-heap "
                  "constants dominate and auto-selection keeps the heap)",
                  flood_n < FLOOD_FULL_N
                  or (speedup is not None and speedup >= 1.3),
                  "queues"),
        ]
    return claims


# ---------------------------------------------------------------------------
# sweep — point-sweep executor wall clock (not a paper figure; gates the
# parallel/cached execution path every figure sweep runs on)
# ---------------------------------------------------------------------------


def _sweep_host_cpus(table: ExperimentTable) -> Optional[int]:
    import re

    for note in table.notes:
        m = re.search(r"host_cpus=(\d+)", note)
        if m:
            return int(m.group(1))
    return None


def _sweep_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    table = tables.get("sweep")
    if table is None:
        return []
    anchors: List[Anchor] = []
    for sweep_id in table.column("sweep"):
        # Dotted keys: the comparator treats the tail after the last
        # "." as the metric name, so every *_s / speedup_* anchor lands
        # in its wall-metric (warn-only) set.
        for col in ("serial_s", "parallel_s", "warm_s",
                    "speedup_parallel", "speedup_cache"):
            value = _cell(table, "sweep", sweep_id, col)
            anchors.append(Anchor(
                f"{sweep_id}.{col}",
                f"{sweep_id} sweep {col} (host wall clock, warn-only)",
                None if value is None else float(value),
                group="sweep", unit="s" if col.endswith("_s") else "x"))
    points = _cell(table, "sweep", "TOTAL", "points")
    events = _cell(table, "sweep", "TOTAL", "events")
    anchors += [
        Anchor("sweep_total_points",
               "points executed across the fig04+fig08 sweeps (deterministic)",
               None if points is None else float(points),
               group="sweep", unit="points"),
        Anchor("sweep_total_events",
               "simulation events those points consumed (deterministic)",
               None if events is None else float(events),
               group="sweep", unit="events"),
    ]
    return anchors


def _sweep_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    table = tables.get("sweep")
    if table is None:
        return []
    identical = all(v == "yes" for v in table.column("identical"))
    hits = _cell(table, "sweep", "TOTAL", "warm_hits")
    points = _cell(table, "sweep", "TOTAL", "points")
    warm_speedup = _cell(table, "sweep", "TOTAL", "speedup_cache")
    par_speedup = _cell(table, "sweep", "TOTAL", "speedup_parallel")
    cpus = _sweep_host_cpus(table)
    return [
        Claim("sweeps_bit_identical",
              "parallel and fully-cached tables bit-identical to serial, "
              "every sweep", identical, "sweep"),
        Claim("warm_hits_full",
              "fully-cached rerun hit the cache on every point",
              hits is not None and hits == points, "sweep"),
        Claim("warm_rerun_10x",
              "fully-cached rerun >= 10x faster than the cold serial run",
              warm_speedup is not None and warm_speedup >= 10, "sweep"),
        Claim("parallel_2x_when_cores_allow",
              "--jobs 4 >= 2x faster than serial (vacuous on hosts with "
              "fewer than 4 CPUs — parallelism is core-bound)",
              (cpus is not None and cpus < 4)
              or (par_speedup is not None and par_speedup >= 2), "sweep"),
    ]


# ---------------------------------------------------------------------------
# fluid — fluid-flow vs packet fidelity (not a paper figure; gates the
# hybrid transfer mode in repro.sim.flow and its fast paths in the
# link/TCP/VIA layers, see docs/ARCHITECTURE.md "Fluid-flow mode")
# ---------------------------------------------------------------------------


def _fluid_rows(table: ExperimentTable):
    return [dict(zip(table.columns, row)) for row in table.rows]


def _fluid_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    from repro.bench.fluidbench import LARGE_BYTES

    table = tables.get("fluid")
    if table is None:
        return []
    rows = _fluid_rows(table)
    large = [r["event_ratio"] for r in rows
             if r["scenario"].endswith("-oneshot")
             and r["msg_bytes"] >= LARGE_BYTES
             and r["event_ratio"] is not None]
    saved = sum(r["events_packet"] - r["events_fluid"] for r in rows)
    return [
        Anchor("fluid_min_large_ratio",
               "worst packet/fluid event ratio over large one-shot "
               "transfers (deterministic; CI floor is 5x)",
               min(large) if large else None, group="fluid", unit="x"),
        Anchor("fluid_max_rel_err",
               "largest |fluid - packet| relative time error, any scenario",
               max(r["rel_err"] for r in rows), group="fluid", unit="frac"),
        Anchor("fluid_events_saved",
               "kernel events the fluid legs avoided across all scenarios "
               "(deterministic)",
               float(saved), group="fluid", unit="events"),
    ]


def _fluid_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    from repro.bench.fluidbench import LARGE_BYTES

    table = tables.get("fluid")
    if table is None:
        return []
    rows = _fluid_rows(table)
    oneshot = [r for r in rows if r["scenario"].endswith("-oneshot")]
    large = [r for r in oneshot if r["msg_bytes"] >= LARGE_BYTES]
    tcp_fanin = [r for r in rows if r["scenario"] == "tcp-fanin"]
    return [
        Claim("fluid_large_10x",
              "every large (>= 1 MiB) one-shot transfer needs >= 10x "
              "fewer kernel events in fluid mode",
              all(r["event_ratio"] is not None and r["event_ratio"] >= 10
                  for r in large) and bool(large), "fluid"),
        Claim("fluid_oneshot_exact",
              "one-shot transfers are bit-compatible: fluid time within "
              "float noise (rel_err <= 1e-9) of the packet time",
              all(r["rel_err"] <= 1e-9 for r in oneshot), "fluid"),
        Claim("fluid_within_band",
              "every scenario — streams, SocketVIA fan-in, and TCP "
              "fan-in included — lands within the comparator's 5% band "
              "of the packet truth",
              all(r["rel_err"] <= 0.05 for r in rows), "fluid"),
        Claim("fluid_tcp_fanin_bounded",
              "tcp-fanin, the band's closest call (receiver-kernel "
              "occupancy recovers most but not all rx interleaving), "
              "stays optimistic but bounded: packet/2 <= fluid <= packet",
              all(0.5 * r["t_packet_us"] <= r["t_fluid_us"]
                  <= r["t_packet_us"] for r in tcp_fanin)
              and bool(tcp_fanin), "fluid"),
        Claim("fluid_never_slower",
              "no scenario processes more kernel events in fluid mode "
              "than in packet mode",
              all(r["events_fluid"] <= r["events_packet"] for r in rows),
              "fluid"),
    ]


# ---------------------------------------------------------------------------
# serve — open-loop serving capacity (repro.bench.servebench)
# ---------------------------------------------------------------------------


def _serve_rows(table: ExperimentTable) -> List[Dict]:
    return [dict(zip(table.columns, row)) for row in table.rows]


def _serve_poisson_cell(table: ExperimentTable, rate: float, col: str):
    """Cell lookup on the load panel's Poisson rows by rate."""
    for row in _serve_rows(table):
        if row["arrival"] == "poisson" and row["rate_per_shard"] == rate:
            return row[col]
    return None


def _serve_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    anchors: List[Anchor] = []
    load = tables.get("serve")
    if load is not None:
        rates = [r["rate_per_shard"] for r in _serve_rows(load)
                 if r["arrival"] == "poisson"]
        low, top = min(rates), max(rates)
        anchors += [
            Anchor("serve_sv_top_qps",
                   "SocketVIA sustained throughput at the top Poisson "
                   "load (deterministic)",
                   _serve_poisson_cell(load, top, "SocketVIA_qps"),
                   group="serve", unit="q/s"),
            Anchor("serve_tcp_top_qps",
                   "TCP sustained throughput at the top Poisson load "
                   "(deterministic)",
                   _serve_poisson_cell(load, top, "TCP_qps"),
                   group="serve", unit="q/s"),
            Anchor("serve_sv_p99_light_ms",
                   "SocketVIA p99 latency at the lightest Poisson load "
                   "(deterministic)",
                   _serve_poisson_cell(load, low, "SocketVIA_p99_ms"),
                   group="serve", unit="ms"),
            Anchor("serve_tcp_p99_light_ms",
                   "TCP p99 latency at the lightest Poisson load "
                   "(deterministic)",
                   _serve_poisson_cell(load, low, "TCP_p99_ms"),
                   group="serve", unit="ms"),
            Anchor("serve_tcp_top_drop_rate",
                   "TCP drop rate at the top Poisson load "
                   "(deterministic)",
                   _serve_poisson_cell(load, top, "TCP_drop_rate"),
                   group="serve", unit="frac"),
        ]
    scale = tables.get("serve_scale")
    if scale is not None:
        spreads = []
        for col in ("SocketVIA_ev_per_query", "TCP_ev_per_query"):
            vals = [v for v in scale.column(col) if v]
            if vals:
                spreads.append(max(vals) / min(vals))
        anchors.append(Anchor(
            "serve_scale_max_spread",
            "worst max/min events-per-query spread across cluster "
            "widths, either transport (deterministic; bar is 1.10)",
            max(spreads) if spreads else None,
            group="serve_scale", unit="x"))
    par = tables.get("serve_par")
    if par is not None:
        row = _serve_rows(par)[0]
        # Dotted keys: the comparator gates the wall-clock tails
        # (``*_s`` / ``speedup_*``) warn-only.
        for col in ("single_s", "parallel_s", "warm_s",
                    "speedup_parallel", "speedup_cache"):
            anchors.append(Anchor(
                f"serve_par.{col}",
                f"shard-parallel serving {col} (host wall clock, "
                "warn-only)",
                None if row[col] is None else float(row[col]),
                group="serve_par",
                unit="s" if col.endswith("_s") else "x"))
        anchors += [
            Anchor("serve_par_points",
                   "shard chunks the parallel legs executed "
                   "(deterministic: a function of the shard count only)",
                   float(row["points"]), group="serve_par", unit="points"),
            Anchor("serve_par_events",
                   "kernel events summed over the shard chunks "
                   "(deterministic)",
                   float(row["events"]), group="serve_par", unit="events"),
        ]
    return anchors


def _serve_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    claims: List[Claim] = []
    load = tables.get("serve")
    if load is not None:
        rows = _serve_rows(load)
        poisson = [r for r in rows if r["arrival"] == "poisson"]
        rates = [r["rate_per_shard"] for r in poisson]
        low, top = min(rates), max(rates)
        top_row = next(r for r in poisson if r["rate_per_shard"] == top)
        low_row = next(r for r in poisson if r["rate_per_shard"] == low)
        bursty = [r for r in rows if r["arrival"] == "bursty"]
        by_key = {(r["arrival"], r["rate_per_shard"]): r for r in rows}
        tail_pairs = [
            (by_key[("poisson", r["rate_per_shard"])], r)
            for r in bursty
            if ("poisson", r["rate_per_shard"]) in by_key
        ]
        claims += [
            Claim("serve_open_loop",
                  "both transports face the identical offered schedule "
                  "in every row (the generator is open-loop)",
                  all(r["offered_sv"] == r["offered_tcp"] for r in rows),
                  "serve"),
            Claim("serve_sv_sustains_more",
                  "at the top offered load SocketVIA sustains at least "
                  "TCP's throughput with no higher drop rate",
                  top_row["SocketVIA_qps"] >= top_row["TCP_qps"]
                  and top_row["SocketVIA_drop_rate"]
                  <= top_row["TCP_drop_rate"], "serve"),
            Claim("serve_no_drops_light",
                  "at the lightest load neither transport drops a query",
                  low_row["SocketVIA_drop_rate"] == 0.0
                  and low_row["TCP_drop_rate"] == 0.0, "serve"),
            Claim("serve_tcp_overloads_first",
                  "the load axis crosses TCP's capacity knee: TCP drops "
                  "queries at the top load",
                  top_row["TCP_drop_rate"] > 0.0, "serve"),
            Claim("serve_p99_grows_with_load",
                  "for both transports p99 at the top Poisson load "
                  "exceeds p99 at the lightest (congestion is visible)",
                  top_row["SocketVIA_p99_ms"] > low_row["SocketVIA_p99_ms"]
                  and top_row["TCP_p99_ms"] > low_row["TCP_p99_ms"],
                  "serve"),
            Claim("serve_bursty_worse_tail",
                  "at equal mean rate, bursty (MMPP) arrivals never "
                  "improve the p99 tail of either transport",
                  all(b["SocketVIA_p99_ms"] >= p["SocketVIA_p99_ms"]
                      and b["TCP_p99_ms"] >= p["TCP_p99_ms"]
                      for p, b in tail_pairs) and bool(tail_pairs),
                  "serve"),
        ]
    scale = tables.get("serve_scale")
    if scale is not None:
        flat = True
        for col in ("SocketVIA_ev_per_query", "TCP_ev_per_query"):
            vals = [v for v in scale.column(col) if v]
            if not vals or max(vals) / min(vals) > 1.10:
                flat = False
        claims.append(Claim(
            "serve_scale_flat",
            "events per completed query stay within a 1.10x spread as "
            "the cluster grows (per-event cost independent of width)",
            flat, "serve_scale"))
    par = tables.get("serve_par")
    if par is not None:
        row = _serve_rows(par)[0]
        cpus = _sweep_host_cpus(par)
        claims += [
            Claim("serve_par_digest_identical",
                  "the sharded runs (parallel cold and fully cached) "
                  "merge to the exact single-process ServeResult — "
                  "identical sha256 digest over counts and every "
                  "float-exact latency sample",
                  row["identical"] == "yes", "serve_par"),
            Claim("serve_par_warm_hits_full",
                  "the cached rerun hit the chunk cache on every point",
                  row["warm_hits"] == row["points"], "serve_par"),
            Claim("serve_par_3x_when_cores_allow",
                  "--jobs 4 sharded run >= 3x faster than the single "
                  "process (vacuous on hosts with fewer than 4 CPUs — "
                  "parallelism is core-bound)",
                  (cpus is not None and cpus < 4)
                  or (row["speedup_parallel"] is not None
                      and row["speedup_parallel"] >= 3), "serve_par"),
        ]
    return claims


# ---------------------------------------------------------------------------
# wancache — block-cache tier + striped WAN reads (repro.bench.wancachebench)
# ---------------------------------------------------------------------------


def _wcq_cell(table: ExperimentTable, temp: str, width: int, col: str):
    for row in _serve_rows(table):
        if row["temperature"] == temp and row["stripe"] == width:
            return row[col]
    return None


def _wancache_headline_width(table: ExperimentTable) -> int:
    """The stripe width the headline speedup claim gates on: 4 when
    present (full and quick axes both carry it), else the widest."""
    widths = sorted({r["stripe"] for r in _serve_rows(table)})
    return 4 if 4 in widths else widths[-1]


def _wancache_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    anchors: List[Anchor] = []
    wcq = tables.get("wcq")
    if wcq is not None:
        w = _wancache_headline_width(wcq)
        cold = _wcq_cell(wcq, "cold", w, "SocketVIA_mean_ms")
        hot = _wcq_cell(wcq, "hot", w, "SocketVIA_mean_ms")
        anchors += [
            Anchor("wancache_sv_cold_ms",
                   f"SocketVIA cold-cache mean query latency at stripe "
                   f"width {w} (deterministic)",
                   cold, group="wcq", unit="ms"),
            Anchor("wancache_sv_hot_ms",
                   f"SocketVIA hot-cache mean query latency at stripe "
                   f"width {w} (deterministic)",
                   hot, group="wcq", unit="ms"),
            Anchor("wancache_hot_speedup",
                   "hot-cache speedup over cold, SocketVIA at the "
                   "headline stripe width (gate is >= 3x)",
                   ratio(cold, hot), group="wcq", unit="x"),
        ]
    wcb = tables.get("wcb")
    if wcb is not None:
        rows = _serve_rows(wcb)
        by_width = {r["stripe"]: r for r in rows}
        low = min(by_width)
        head = 4 if 4 in by_width else max(by_width)
        anchors += [
            Anchor("wancache_sv_stripe1_MBps",
                   "SocketVIA single-stream bulk throughput on the "
                   "high-BDP link (deterministic)",
                   by_width[low]["SocketVIA_MBps"],
                   group="wcb", unit="MB/s"),
            Anchor("wancache_sv_stripe4_MBps",
                   f"SocketVIA bulk throughput at stripe width {head} "
                   "(deterministic)",
                   by_width[head]["SocketVIA_MBps"],
                   group="wcb", unit="MB/s"),
            Anchor("wancache_stripe_speedup",
                   f"stripe-width-{head} speedup over single-stream, "
                   "SocketVIA (gate is >= 2x)",
                   ratio(by_width[head]["SocketVIA_MBps"],
                         by_width[low]["SocketVIA_MBps"]),
                   group="wcb", unit="x"),
        ]
    return anchors


def _wancache_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    claims: List[Claim] = []
    wcq = tables.get("wcq")
    if wcq is not None:
        rows = _serve_rows(wcq)
        widths = sorted({r["stripe"] for r in rows})
        temps = {r["temperature"] for r in rows}
        head = _wancache_headline_width(wcq)
        cold = _wcq_cell(wcq, "cold", head, "SocketVIA_mean_ms")
        hot = _wcq_cell(wcq, "hot", head, "SocketVIA_mean_ms")
        ordered = True
        for width in widths:
            for col in ("SocketVIA_mean_ms", "TCP_mean_ms"):
                c = _wcq_cell(wcq, "cold", width, col)
                h = _wcq_cell(wcq, "hot", width, col)
                seq = [c, h]
                if "warm" in temps:
                    seq.insert(1, _wcq_cell(wcq, "warm", width, col))
                if any(v is None for v in seq) or \
                        any(a <= b for a, b in zip(seq, seq[1:])):
                    ordered = False
        claims += [
            Claim("wancache_hot_3x",
                  "hot-cache queries are >= 3x faster than cold over "
                  "the WAN preset (SocketVIA, headline stripe width)",
                  cold is not None and hot is not None
                  and cold >= 3.0 * hot, "wcq"),
            Claim("wancache_temperature_orders",
                  "latency orders cold > warm > hot at every stripe "
                  "width for both transports (warm rows when present)",
                  ordered, "wcq"),
            Claim("wancache_hit_rates_exact",
                  "hit accounting is exact: cold rows measure 0.0 and "
                  "hot rows 1.0 for both transports",
                  all(r["SocketVIA_hit_rate"] == 0.0
                      and r["TCP_hit_rate"] == 0.0
                      for r in rows if r["temperature"] == "cold")
                  and all(r["SocketVIA_hit_rate"] == 1.0
                          and r["TCP_hit_rate"] == 1.0
                          for r in rows if r["temperature"] == "hot"),
                  "wcq"),
            Claim("wancache_striping_helps_cold",
                  "striping shortens cold-cache queries: SocketVIA "
                  "cold latency at the headline width is below "
                  "single-stream",
                  (_wcq_cell(wcq, "cold", head, "SocketVIA_mean_ms")
                   or 0.0)
                  < (_wcq_cell(wcq, "cold", min(widths),
                               "SocketVIA_mean_ms") or 0.0)
                  if head != min(widths) else True, "wcq"),
        ]
    wcb = tables.get("wcb")
    if wcb is not None:
        rows = _serve_rows(wcb)
        by_width = {r["stripe"]: r for r in rows}
        low = min(by_width)
        head = 4 if 4 in by_width else max(by_width)
        monotone = True
        for col in ("SocketVIA_MBps", "TCP_MBps"):
            seq = [by_width[w][col] for w in sorted(by_width)]
            # near-monotone: 2% slack absorbs saturation plateaus at
            # the widest stripes, never a real regression
            if any(b < 0.98 * a for a, b in zip(seq, seq[1:])):
                monotone = False
        digests = [r[c] for r in rows
                   for c in ("SocketVIA_digest", "TCP_digest")]
        claims += [
            Claim("wancache_stripe_2x",
                  f"stripe width {head} sustains >= 2x single-stream "
                  "bulk throughput on the high-BDP link, both "
                  "transports",
                  all(by_width[head][c] >= 2.0 * by_width[low][c]
                      for c in ("SocketVIA_MBps", "TCP_MBps")), "wcb"),
            Claim("wancache_stripe_monotone",
                  "bulk throughput is near-monotone in stripe width "
                  "(<= 2% slack) for both transports",
                  monotone, "wcb"),
            Claim("wancache_reassembly_identical",
                  "striped reassembly is bit-identical to the "
                  "unstriped path: every cell's digest equals the "
                  "width-1 digest, both transports",
                  bool(digests) and len(set(digests)) == 1, "wcb"),
        ]
    return claims


# ---------------------------------------------------------------------------
# tails — replicated dispatch under straggler plans (repro.bench.tailsbench)
# ---------------------------------------------------------------------------


def _tails_cell(table: ExperimentTable, plan: str, k: int, col: str):
    for row in _serve_rows(table):
        if row["plan"] == plan and row["k"] == k:
            return row[col]
    return None


def _tails_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    anchors: List[Anchor] = []
    tls = tables.get("tls")
    if tls is not None:
        k1 = _tails_cell(tls, "straggler", 1, "TCP_p999_ms")
        k2 = _tails_cell(tls, "straggler", 2, "TCP_p999_ms")
        sv1 = _tails_cell(tls, "straggler", 1, "SocketVIA_p999_ms")
        sv2 = _tails_cell(tls, "straggler", 2, "SocketVIA_p999_ms")
        anchors += [
            Anchor("tails_tcp_p999_k1_ms",
                   "TCP p999 query latency under the straggler preset, "
                   "unreplicated (deterministic)",
                   k1, group="tls", unit="ms"),
            Anchor("tails_tcp_p999_k2_ms",
                   "TCP p999 query latency under the straggler preset "
                   "with k=2 hedged replication (deterministic)",
                   k2, group="tls", unit="ms"),
            Anchor("tails_tcp_p999_cut",
                   "k=2 p999 cut under stragglers, TCP (gate is >= 2x)",
                   ratio(k1, k2), group="tls", unit="x"),
            Anchor("tails_sv_p999_cut",
                   "k=2 p999 cut under stragglers, SocketVIA",
                   ratio(sv1, sv2), group="tls", unit="x"),
        ]
    tlc = tables.get("tlc")
    if tlc is not None:
        w1 = _tails_cell(tlc, "none", 1, "TCP_work_ms")
        w2 = _tails_cell(tlc, "none", 2, "TCP_work_ms")
        anchors += [
            Anchor("tails_overhead_ratio",
                   "no-fault executed-work ratio k=2 over k=1, TCP "
                   "(gate is <= 1.15x)",
                   ratio(w2, w1), group="tlc", unit="x"),
        ]
    return anchors


def _tails_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    claims: List[Claim] = []
    tls = tables.get("tls")
    if tls is not None:
        tcp1 = _tails_cell(tls, "straggler", 1, "TCP_p999_ms")
        tcp2 = _tails_cell(tls, "straggler", 2, "TCP_p999_ms")
        sv1 = _tails_cell(tls, "straggler", 1, "SocketVIA_p999_ms")
        sv2 = _tails_cell(tls, "straggler", 2, "SocketVIA_p999_ms")
        claims += [
            Claim("tails_tcp_p999_2x",
                  "k=2 hedged replication cuts the TCP p999 under the "
                  "straggler preset by >= 2x",
                  tcp1 is not None and tcp2 is not None
                  and tcp1 >= 2.0 * tcp2, "tls"),
            Claim("tails_sv_p999_2x",
                  "k=2 hedged replication cuts the SocketVIA p999 "
                  "under the straggler preset by >= 2x",
                  sv1 is not None and sv2 is not None
                  and sv1 >= 2.0 * sv2, "tls"),
        ]
    tlc = tables.get("tlc")
    if tlc is not None:
        rows = _serve_rows(tlc)
        overhead_ok = True
        for col in ("SocketVIA_work_ms", "TCP_work_ms"):
            w1 = _tails_cell(tlc, "none", 1, col)
            w2 = _tails_cell(tlc, "none", 2, col)
            if w1 is None or w2 is None or w2 > 1.15 * w1:
                overhead_ok = False
        claims += [
            Claim("tails_overhead_115",
                  "hedged k=2 costs <= 1.15x the unreplicated executed "
                  "work in the no-fault case, both transports",
                  overhead_ok, "tlc"),
            Claim("tails_conservation_exact",
                  "replica conservation is exact in every cell: "
                  "completed == dispatched - retracted, both transports",
                  bool(rows) and all(
                      r[f"{p}_completed"]
                      == r[f"{p}_dispatched"] - r[f"{p}_retracted"]
                      for r in rows for p in ("SocketVIA", "TCP")),
                  "tlc"),
            Claim("tails_replication_engages",
                  "replication actually engages under stragglers: some "
                  "k=2 replicas are retracted (first finisher won), "
                  "and unreplicated rows retract none",
                  all(r[f"{p}_retracted"] == 0
                      for r in rows for p in ("SocketVIA", "TCP")
                      if r["k"] == 1)
                  and any(r[f"{p}_retracted"] > 0
                          for r in rows for p in ("SocketVIA", "TCP")
                          if r["k"] >= 2 and r["plan"] == "straggler"),
                  "tlc"),
        ]
    return claims


def _no_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    return []


def _no_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    return []


#: The benchmark experiments, keyed by id (``bench run <id>``).
SUITES: Dict[str, BenchSuite] = {
    s.bench_id: s
    for s in (
        BenchSuite("fig02", "Message-size economics (Figure 2)",
                   ("2",), _fig02_anchors, _fig02_claims),
        BenchSuite("fig04", "Latency / bandwidth micro-benchmarks (Figure 4)",
                   ("4a", "4b"), _fig04_anchors, _fig04_claims),
        BenchSuite("fig07", "Partial-update latency under update-rate "
                   "guarantees (Figure 7)", ("7a", "7b"),
                   _no_anchors, _no_claims),
        BenchSuite("fig08", "Updates/s under latency guarantees (Figure 8)",
                   ("8a", "8b"), _no_anchors, _no_claims),
        BenchSuite("fig09", "Mixed query types vs response time (Figure 9)",
                   ("9a", "9b"), _no_anchors, _no_claims),
        BenchSuite("fig10", "Round-robin reaction time (Figure 10)",
                   ("10",), _fig10_anchors, _fig10_claims),
        BenchSuite("fig11", "Demand-driven scheduling under dynamic "
                   "slowdown (Figure 11)", ("11",),
                   _no_anchors, _fig11_claims),
        BenchSuite("chaos", "Figures 8 and 11 under calibrated fault "
                   "plans (fault injection + resilience)", ("c8", "c11"),
                   _chaos_anchors, _chaos_claims),
        BenchSuite("kernel", "Simulation-kernel throughput micro-benchmarks",
                   ("kernel", "queues"), _kernel_anchors, _kernel_claims),
        BenchSuite("sweep", "Point-sweep executor: serial vs parallel vs "
                   "cached wall clock", ("sweep",),
                   _sweep_anchors, _sweep_claims),
        BenchSuite("fluid", "Fluid-flow vs packet: transfer fidelity and "
                   "event economy", ("fluid",),
                   _fluid_anchors, _fluid_claims),
        BenchSuite("serve", "Open-loop multi-tenant serving: capacity, "
                   "SLO latency, and drops vs offered load",
                   ("serve", "serve_scale", "serve_par"),
                   _serve_anchors, _serve_claims),
        BenchSuite("wancache", "WAN block-cache tier: query latency vs "
                   "cache temperature, striped bulk throughput",
                   ("wcq", "wcb"),
                   _wancache_anchors, _wancache_claims),
        BenchSuite("tails", "Replicated dispatch for tail latency: "
                   "percentiles and conservation under straggler plans",
                   ("tls", "tlc"),
                   _tails_anchors, _tails_claims),
    )
}


def get_suite(bench_id: str) -> BenchSuite:
    """Look a suite up by id; accepts ``fig04``, ``04``, ``4``, ``fig4``,
    and non-figure suite ids (``kernel``) verbatim."""
    key = bench_id.lower()
    if key in SUITES:
        return SUITES[key]
    if not key.startswith("fig"):
        key = "fig" + key
    digits = key[3:]
    if digits.isdigit():
        key = f"fig{int(digits):02d}"
    if key not in SUITES:
        raise KeyError(
            f"unknown bench experiment {bench_id!r}; have {sorted(SUITES)}")
    return SUITES[key]


def suite_names() -> List[str]:
    """All experiment ids, sorted."""
    return sorted(SUITES)
