"""Benchmark suite definitions: figures, anchors, and claims.

This module is the single source of truth for *what* the harness runs
and *how* a run is judged:

* :data:`FIGURES` — one callable per paper figure panel (moved here
  from the CLI so ``python -m repro figure``, ``python -m repro bench``
  and the pytest benchmarks all execute the same drivers);
* :class:`Anchor` — a scalar metric extracted from the result tables,
  optionally tied to a number the paper publishes (with a relative
  tolerance);
* :class:`Claim` — a structural pass/fail statement the paper makes
  (orderings, monotonicity, crossovers);
* :class:`BenchSuite` — groups the panels of one experiment
  (``fig04`` = panels 4a + 4b) with its anchor/claim extractors.

The pytest benchmarks under ``benchmarks/`` are thin adapters over
these extractors, and ``repro.bench.runner`` persists their output —
one implementation, two front ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.records import ExperimentTable, ratio

__all__ = [
    "FIGURES",
    "RUNTIME_HINT",
    "Anchor",
    "Claim",
    "BenchSuite",
    "SUITES",
    "get_suite",
    "suite_names",
]


def _figures() -> Dict[str, Callable]:
    from repro.bench import figures as f
    from repro.bench import microbench as m

    return {
        "kernel": lambda quick: m.kernel_suite(quick),
        "2": lambda quick: f.fig2_message_size_economics(),
        "4a": lambda quick: f.fig4a_latency(
            sizes=[4, 256, 4096] if quick else None),
        "4b": lambda quick: f.fig4b_bandwidth(
            sizes=[2048, 16384, 65536] if quick else None),
        "7a": lambda quick: f.fig7_update_rate_guarantee(
            0.0, rates=[4.0, 3.25, 2.0] if quick else None,
            frames=2 if quick else 3),
        "7b": lambda quick: f.fig7_update_rate_guarantee(
            18.0, rates=[3.25, 2.0] if quick else None,
            frames=2 if quick else 3),
        "8a": lambda quick: f.fig8_latency_guarantee(
            0.0, bounds_us=[1000, 400, 100] if quick else None,
            frames=2 if quick else 3),
        "8b": lambda quick: f.fig8_latency_guarantee(
            18.0, bounds_us=[1000, 400, 200] if quick else None,
            frames=2 if quick else 3),
        "9a": lambda quick: f.fig9_query_mix(
            0.0, fractions=[0.0, 0.6, 1.0] if quick else None,
            n_queries=6 if quick else 10),
        "9b": lambda quick: f.fig9_query_mix(
            18.0, fractions=[0.0, 1.0] if quick else None,
            n_queries=6 if quick else 10),
        "10": lambda quick: f.fig10_rr_reaction(
            factors=[2, 10] if quick else None,
            total_bytes=(4 if quick else 8) * 1024 * 1024),
        "11": lambda quick: f.fig11_dd_heterogeneity(
            probabilities=[0.1, 0.9] if quick else None,
            factors=[2, 8] if quick else None,
            total_bytes=(2 if quick else 8) * 1024 * 1024),
    }


class _LazyFigures(dict):
    """Figure registry that defers the (heavy) driver imports."""

    def _fill(self) -> None:
        if not super().__len__():
            super().update(_figures())

    def __getitem__(self, key):
        self._fill()
        return super().__getitem__(key)

    def __contains__(self, key):
        self._fill()
        return super().__contains__(key)

    def __iter__(self):
        self._fill()
        return super().__iter__()

    def __len__(self):
        self._fill()
        return super().__len__()

    def keys(self):
        self._fill()
        return super().keys()

    def items(self):
        self._fill()
        return super().items()


#: Panel id -> driver callable taking one ``quick`` flag.
FIGURES: Dict[str, Callable] = _LazyFigures()

#: Rough full-axis runtimes, shown by the ``list`` commands.
RUNTIME_HINT = {
    "2": "instant", "4a": "~1 min", "4b": "~3 min", "7a": "~3 min",
    "7b": "~2.5 min", "8a": "~30 s", "8b": "~25 s", "9a": "~1 min",
    "9b": "~1 min", "10": "~3 s", "11": "~11 s", "kernel": "~3 s",
}


@dataclass(frozen=True)
class Anchor:
    """One scalar metric extracted from a run.

    ``paper`` and ``rel_tol`` are set when the paper publishes the
    number; :attr:`ok` then states whether the measurement lands within
    the tolerance band.  Anchors without a paper value are tracked for
    baseline regressions only.
    """

    key: str
    description: str
    measured: Optional[float]
    group: str  # panel id the metric comes from (e.g. "4a")
    unit: str = ""
    paper: Optional[float] = None
    rel_tol: Optional[float] = None

    @property
    def delta_rel(self) -> Optional[float]:
        """Relative deviation from the paper value (None when untied)."""
        if self.paper in (None, 0) or self.measured is None:
            return None
        return (self.measured - self.paper) / abs(self.paper)

    @property
    def ok(self) -> bool:
        """Within tolerance of the paper value (True when untied)."""
        if self.paper is None or self.rel_tol is None:
            return self.measured is not None
        if self.measured is None:
            return False
        return abs(self.measured - self.paper) <= self.rel_tol * abs(self.paper)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "description": self.description,
            "measured": self.measured,
            "group": self.group,
            "unit": self.unit,
            "paper": self.paper,
            "rel_tol": self.rel_tol,
            "delta_rel": self.delta_rel,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class Claim:
    """One structural statement from the paper, checked against a run."""

    key: str
    description: str
    passed: bool
    group: str

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "description": self.description,
            "passed": self.passed,
            "group": self.group,
        }


Extractor = Callable[[Dict[str, ExperimentTable]], List]


@dataclass(frozen=True)
class BenchSuite:
    """One benchmark experiment: its panels and how to judge a run."""

    bench_id: str
    title: str
    panels: Tuple[str, ...]
    anchors: Extractor = field(default=lambda tables: [])
    claims: Extractor = field(default=lambda tables: [])

    @property
    def runtime_hint(self) -> str:
        return " + ".join(RUNTIME_HINT.get(p, "?") for p in self.panels)


def _cell(table: ExperimentTable, key_col: str, key, value_col: str):
    """Table cell lookup by row key; None when the row is absent."""
    try:
        idx = table.column(key_col).index(key)
    except ValueError:
        return None
    return table.rows[idx][table.columns.index(value_col)]


# ---------------------------------------------------------------------------
# fig02 — message-size economics
# ---------------------------------------------------------------------------


def _fig02_values(table: ExperimentTable) -> Dict[str, float]:
    return dict(zip(table.column("quantity"), table.column("value")))


def _fig02_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    table = tables.get("2")
    if table is None:
        return []
    v = _fig02_values(table)

    def mk(key, desc, quantity, unit):
        return Anchor(key, desc, v.get(quantity), group="2", unit=unit)

    return [
        mk("u1_bytes", "U1: kernel-sockets message size for B",
           "U1 (kernel sockets size for B, bytes)", "B"),
        mk("u2_bytes", "U2: high-perf substrate size for B",
           "U2 (high-perf substrate size for B, bytes)", "B"),
        mk("l1_us", "L1: kernel latency at U1",
           "L1 = kernel latency at U1 (us)", "us"),
        mk("l2_us", "L2: substrate latency at U1",
           "L2 = substrate latency at U1 (us)", "us"),
        mk("l3_us", "L3: substrate latency at U2",
           "L3 = substrate latency at U2 (us)", "us"),
    ]


def _fig02_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    table = tables.get("2")
    if table is None:
        return []
    v = _fig02_values(table)
    u1 = v["U1 (kernel sockets size for B, bytes)"]
    u2 = v["U2 (high-perf substrate size for B, bytes)"]
    l1 = v["L1 = kernel latency at U1 (us)"]
    l2 = v["L2 = substrate latency at U1 (us)"]
    l3 = v["L3 = substrate latency at U2 (us)"]
    return [
        Claim("u2_much_smaller_than_u1",
              "U2 << U1 (repartitioning has room to shrink messages)",
              u2 < u1 / 4, "2"),
        Claim("latency_staircase",
              "L3 < L2 < L1 (direct then indirect improvement)",
              l3 < l2 < l1, "2"),
        Claim("total_improvement_over_10x",
              "L1/L3 > 10 (combined improvement exceeds an order of magnitude)",
              l1 / l3 > 10, "2"),
    ]


# ---------------------------------------------------------------------------
# fig04 — micro-benchmarks (the calibrated anchors)
# ---------------------------------------------------------------------------


def _fig04_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    from repro.net import PAPER_MICROBENCH

    anchors: List[Anchor] = []
    lat = tables.get("4a")
    if lat is not None:
        sv = _cell(lat, "msg_bytes", 4, "SocketVIA")
        tcp = _cell(lat, "msg_bytes", 4, "TCP")
        via = _cell(lat, "msg_bytes", 4, "VIA")
        anchors += [
            Anchor("socketvia_latency_4b_us", "SocketVIA 4-byte latency",
                   sv, group="4a", unit="us",
                   paper=PAPER_MICROBENCH["socketvia_latency_4b_us"],
                   rel_tol=0.05),
            Anchor("tcp_over_socketvia_latency",
                   "TCP / SocketVIA latency ratio (4 B)",
                   ratio(tcp, sv), group="4a", unit="x",
                   paper=PAPER_MICROBENCH["tcp_latency_over_socketvia"],
                   rel_tol=0.10),
            Anchor("via_latency_4b_us", "raw VIA 4-byte latency",
                   via, group="4a", unit="us"),
        ]
    bw = tables.get("4b")
    if bw is not None:
        def peak(col):
            return _cell(bw, "msg_bytes", 65536, col)

        def at2k(col):
            return _cell(bw, "msg_bytes", 2048, col)

        anchors += [
            Anchor("via_peak_mbps", "VIA peak bandwidth (64 KB)",
                   peak("VIA"), group="4b", unit="Mbps",
                   paper=PAPER_MICROBENCH["via_peak_mbps"], rel_tol=0.05),
            Anchor("socketvia_peak_mbps", "SocketVIA peak bandwidth (64 KB)",
                   peak("SocketVIA"), group="4b", unit="Mbps",
                   paper=PAPER_MICROBENCH["socketvia_peak_mbps"],
                   rel_tol=0.05),
            Anchor("tcp_peak_mbps", "TCP peak bandwidth (64 KB)",
                   peak("TCP"), group="4b", unit="Mbps",
                   paper=PAPER_MICROBENCH["tcp_peak_mbps"], rel_tol=0.05),
            Anchor("socketvia_2k_fraction_of_peak",
                   "SocketVIA bandwidth at 2 KB / its peak",
                   ratio(at2k("SocketVIA"), peak("SocketVIA")),
                   group="4b", unit="frac"),
            Anchor("tcp_2k_fraction_of_peak",
                   "TCP bandwidth at 2 KB / its peak",
                   ratio(at2k("TCP"), peak("TCP")), group="4b", unit="frac"),
        ]
    return anchors


def _fig04_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    claims: List[Claim] = []
    lat = tables.get("4a")
    if lat is not None:
        via = _cell(lat, "msg_bytes", 4, "VIA")
        sv = _cell(lat, "msg_bytes", 4, "SocketVIA")
        tcp = _cell(lat, "msg_bytes", 4, "TCP")
        claims.append(Claim(
            "latency_ordering", "VIA < SocketVIA < TCP at 4 bytes",
            via < sv < tcp, "4a"))
        monotone = all(
            lat.column(col) == sorted(lat.column(col))
            for col in ("VIA", "SocketVIA", "TCP"))
        claims.append(Claim(
            "latency_monotone", "latency grows with message size, every series",
            monotone, "4a"))
    bw = tables.get("4b")
    if bw is not None:
        sv2k = _cell(bw, "msg_bytes", 2048, "SocketVIA")
        svp = _cell(bw, "msg_bytes", 65536, "SocketVIA")
        tcp2k = _cell(bw, "msg_bytes", 2048, "TCP")
        tcpp = _cell(bw, "msg_bytes", 65536, "TCP")
        claims += [
            Claim("socketvia_near_peak_at_2k",
                  "SocketVIA within 10% of peak at 2 KB (U2)",
                  sv2k > 0.9 * svp, "4b"),
            Claim("tcp_far_from_peak_at_2k",
                  "TCP below 75% of peak at 2 KB (needs U1 ~ 16 KB)",
                  tcp2k < 0.75 * tcpp, "4b"),
        ]
    return claims


# ---------------------------------------------------------------------------
# fig10 — round-robin reaction time
# ---------------------------------------------------------------------------


def _fig10_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    from repro.net import PAPER_RESULTS

    table = tables.get("10")
    if table is None:
        return []
    anchors = []
    for factor, r in zip(table.column("factor"),
                         table.column("ratio_tcp_over_sv")):
        anchors.append(Anchor(
            f"reaction_ratio_factor_{factor}",
            f"TCP/SocketVIA reaction-time ratio at heterogeneity {factor}",
            r, group="10", unit="x",
            paper=PAPER_RESULTS["fig10_reaction_ratio"], rel_tol=0.15))
    return anchors


def _fig10_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    table = tables.get("10")
    if table is None:
        return []
    sv = table.column("SocketVIA")
    tcp = table.column("TCP")
    return [
        Claim("reaction_grows_with_factor",
              "reaction time grows with the heterogeneity factor",
              sv == sorted(sv) and tcp == sorted(tcp), "10"),
        Claim("socketvia_reacts_faster",
              "SocketVIA reacts faster than TCP at every factor",
              all(s < t for s, t in zip(sv, tcp)), "10"),
    ]


# ---------------------------------------------------------------------------
# fig11 — demand-driven scheduling under dynamic slowdown
# ---------------------------------------------------------------------------


def _fig11_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    table = tables.get("11")
    if table is None:
        return []
    sv_cols = [c for c in table.columns if c.startswith("SocketVIA")]
    tcp_cols = [c for c in table.columns if c.startswith("TCP")]
    close = all(
        abs(t - s) / s < 0.15
        for sc, tc in zip(sv_cols, tcp_cols)
        for s, t in zip(table.column(sc), table.column(tc)))
    rising = all(
        table.column(c)[0] < table.column(c)[-1]
        for c in sv_cols + tcp_cols)
    return [
        Claim("tcp_tracks_socketvia",
              "TCP within 15% of SocketVIA under demand-driven scheduling",
              close, "11"),
        Claim("time_rises_with_p_slow",
              "execution time rises with P(slow), every series",
              rising, "11"),
    ]


# ---------------------------------------------------------------------------
# kernel — simulation-kernel throughput (not a paper figure; gates the
# event-loop fast path that every figure reproduction runs on)
# ---------------------------------------------------------------------------


def _kernel_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    table = tables.get("kernel")
    if table is None:
        return []
    idx = table.column("workload").index("TOTAL")
    total_events = table.column("events")[idx]
    heap_peak = max(table.column("heap_peak"))
    eps = table.column("events_per_sec")[idx]
    return [
        Anchor("kernel_total_events",
               "useful events processed across all workloads (deterministic)",
               float(total_events), group="kernel", unit="events"),
        Anchor("kernel_heap_peak",
               "largest event heap any workload reached (deterministic)",
               float(heap_peak), group="kernel", unit="entries"),
        Anchor("events_per_sec",
               "aggregate kernel throughput (host-dependent, gated warn-only)",
               float(eps), group="kernel", unit="events/s"),
    ]


def _kernel_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    table = tables.get("kernel")
    if table is None:
        return []
    names = table.column("workload")
    events = dict(zip(names, table.column("events")))
    expected = dict(zip(names, table.column("expected_events")))
    exact = all(events[w] == expected[w] for w in names)
    return [
        Claim("event_counts_exact",
              "every workload processed exactly its closed-form event count "
              "(cancelled timers contributed zero fired events)",
              exact, "kernel"),
        Claim("wheel_cancellation_lazy",
              "timer-wheel fires only the surviving timer per connection "
              "despite ~10x as many scheduled-then-cancelled",
              events.get("timer_wheel") == expected.get("timer_wheel"),
              "kernel"),
        Claim("cancelled_deadlines_never_fire",
              "deadline-cancel workload processed only its live survivors",
              events.get("timer_cancel") == expected.get("timer_cancel"),
              "kernel"),
    ]


def _no_anchors(tables: Dict[str, ExperimentTable]) -> List[Anchor]:
    return []


def _no_claims(tables: Dict[str, ExperimentTable]) -> List[Claim]:
    return []


#: The benchmark experiments, keyed by id (``bench run <id>``).
SUITES: Dict[str, BenchSuite] = {
    s.bench_id: s
    for s in (
        BenchSuite("fig02", "Message-size economics (Figure 2)",
                   ("2",), _fig02_anchors, _fig02_claims),
        BenchSuite("fig04", "Latency / bandwidth micro-benchmarks (Figure 4)",
                   ("4a", "4b"), _fig04_anchors, _fig04_claims),
        BenchSuite("fig07", "Partial-update latency under update-rate "
                   "guarantees (Figure 7)", ("7a", "7b"),
                   _no_anchors, _no_claims),
        BenchSuite("fig08", "Updates/s under latency guarantees (Figure 8)",
                   ("8a", "8b"), _no_anchors, _no_claims),
        BenchSuite("fig09", "Mixed query types vs response time (Figure 9)",
                   ("9a", "9b"), _no_anchors, _no_claims),
        BenchSuite("fig10", "Round-robin reaction time (Figure 10)",
                   ("10",), _fig10_anchors, _fig10_claims),
        BenchSuite("fig11", "Demand-driven scheduling under dynamic "
                   "slowdown (Figure 11)", ("11",),
                   _no_anchors, _fig11_claims),
        BenchSuite("kernel", "Simulation-kernel throughput micro-benchmarks",
                   ("kernel",), _kernel_anchors, _kernel_claims),
    )
}


def get_suite(bench_id: str) -> BenchSuite:
    """Look a suite up by id; accepts ``fig04``, ``04``, ``4``, ``fig4``,
    and non-figure suite ids (``kernel``) verbatim."""
    key = bench_id.lower()
    if key in SUITES:
        return SUITES[key]
    if not key.startswith("fig"):
        key = "fig" + key
    digits = key[3:]
    if digits.isdigit():
        key = f"fig{int(digits):02d}"
    if key not in SUITES:
        raise KeyError(
            f"unknown bench experiment {bench_id!r}; have {sorted(SUITES)}")
    return SUITES[key]


def suite_names() -> List[str]:
    """All experiment ids, sorted."""
    return sorted(SUITES)
