"""The ``serve`` suite: open-loop serving capacity vs transport.

Two panels (docs/SERVING.md):

* ``serve`` — sustained throughput, exact p50/p99 latency, and drop
  rate vs offered load per shard, TCP vs SocketVIA side by side, on a
  256-host sharded topology.  Poisson rows sweep the load axis across
  the capacity knee of both transports; two bursty (MMPP on/off) rows
  repeat mid-axis loads at the *same mean rate* to show what arrival
  clumping alone does to tails and drops.
* ``serve_scale`` — events-per-completed-query at a fixed per-shard
  load while the cluster grows 64 -> 1024 hosts.  The simulator's cost
  per query must not grow with cluster width (indexed demux, bucketed
  demand-driven pick, O(1) shard routing); the ``serve_scale_flat``
  claim pins the spread to <= 1.10.

Both panels decompose into cache-addressable points
(:func:`serve_points` / :func:`serve_scale_points`) exactly like the
figure sweeps, so ``bench run serve --jobs N`` parallelizes per cell
and reruns are cache hits.  Every metric is simulated or an event
count — no wall-clock columns — so the comparator gates the whole
record exactly.
"""

from __future__ import annotations

from typing import Any, List

from repro.apps.serve import ServeConfig, run_serve
from repro.bench.executor import Point, PointPlan
from repro.bench.records import ExperimentTable, ratio

__all__ = [
    "serve_cell",
    "serve_scale_cell",
    "serve_load_sweep",
    "serve_scale_sweep",
    "serve_points",
    "serve_scale_points",
    "serve_parallel_benchmark",
    "SERVE_HOSTS",
    "SERVE_RATES",
    "SERVE_BURSTY_RATES",
    "SERVE_SCALE_HOSTS",
    "SERVE_SCALE_RATE",
    "SERVE_SEED",
    "SERVE_PAR_HOSTS",
    "SERVE_PAR_JOBS",
]

#: Load panel cluster width (>= 256 hosts per the acceptance bar).
SERVE_HOSTS = 256
#: Offered load axis, queries/second per shard (Poisson rows).  Spans
#: under -> over the capacity knee of both transports: TCP saturates
#: near ~570 q/s/shard, SocketVIA near ~900.
SERVE_RATES = (200.0, 500.0, 800.0, 1100.0)
#: Mid-axis loads repeated with MMPP on/off arrivals (same mean rate).
SERVE_BURSTY_RATES = (500.0, 800.0)
#: Arrival window of the load panel (seconds of simulated time).
SERVE_HORIZON = 0.05
#: Scale panel: cluster widths at a fixed per-shard load.
SERVE_SCALE_HOSTS = (64, 256, 1024)
SERVE_SCALE_RATE = 300.0
SERVE_SCALE_HORIZON = 0.04
SERVE_SEED = 17

_PROTOCOLS = ("socketvia", "tcp")

_SERVE_NOTE = (
    "open-loop arrivals: the offered schedule is drawn before the "
    "simulation and is identical for both transports (offered_sv == "
    "offered_tcp) — overload shows up as drops, never as a slowed client"
)
_SCALE_NOTE = (
    "fixed 300 q/s/shard while the cluster grows; events per completed "
    "query must stay flat (spread <= 1.10) — per-query cost is "
    "independent of cluster width"
)


def serve_cell(protocol: str, hosts: int, rate_per_shard: float,
               horizon: float, arrival: str, seed: int) -> List[float]:
    """Point: one (protocol, load, arrival-process) serving run.

    Returns ``[offered, qps, p50_ms, p99_ms, drop_rate]``.
    """
    result = run_serve(ServeConfig(
        protocol=protocol,
        hosts=hosts,
        rate_per_shard=rate_per_shard,
        horizon=horizon,
        arrival=arrival,
        seed=seed,
    ))
    return [
        float(result.offered),
        float(result.throughput),
        float(result.p50 * 1e3),
        float(result.p99 * 1e3),
        float(result.drop_rate),
    ]


def serve_scale_cell(protocol: str, hosts: int, rate_per_shard: float,
                     horizon: float, arrival: str, seed: int) -> List[float]:
    """Point: one (protocol, cluster-width) cost-flatness run.

    Returns ``[completed, events_per_query]``.
    """
    result = run_serve(ServeConfig(
        protocol=protocol,
        hosts=hosts,
        rate_per_shard=rate_per_shard,
        horizon=horizon,
        arrival=arrival,
        seed=seed,
    ))
    return [float(result.completed), float(result.events_per_query)]


def _serve_table() -> ExperimentTable:
    return ExperimentTable(
        "serve",
        "Open-loop serving: throughput / latency / drops vs offered load",
        ["arrival", "rate_per_shard", "offered_sv", "offered_tcp",
         "SocketVIA_qps", "TCP_qps",
         "SocketVIA_p50_ms", "TCP_p50_ms",
         "SocketVIA_p99_ms", "TCP_p99_ms",
         "SocketVIA_drop_rate", "TCP_drop_rate"],
    )


def _scale_table() -> ExperimentTable:
    return ExperimentTable(
        "serve_scale",
        "Per-query event cost vs cluster width (fixed per-shard load)",
        ["hosts", "shards",
         "SocketVIA_completed", "TCP_completed",
         "SocketVIA_ev_per_query", "TCP_ev_per_query"],
    )


def _serve_axis(rates, bursty_rates):
    """Row keys of the load panel: Poisson sweep then bursty repeats."""
    axis = [("poisson", float(r)) for r in rates]
    axis += [("bursty", float(r)) for r in bursty_rates]
    return axis


def _serve_row(arrival: str, rate: float, sv: List[float],
               tcp: List[float]) -> List[Any]:
    return [arrival, rate, sv[0], tcp[0], sv[1], tcp[1],
            sv[2], tcp[2], sv[3], tcp[3], sv[4], tcp[4]]


def serve_load_sweep(
    hosts: int = SERVE_HOSTS,
    rates=None,
    bursty_rates=None,
    horizon: float = SERVE_HORIZON,
    seed: int = SERVE_SEED,
) -> ExperimentTable:
    """The ``serve`` panel, serial path."""
    axis = _serve_axis(rates or SERVE_RATES,
                       SERVE_BURSTY_RATES if bursty_rates is None
                       else bursty_rates)
    table = _serve_table()
    for arrival, rate in axis:
        cells = {
            proto: serve_cell(proto, hosts, rate, horizon, arrival, seed)
            for proto in _PROTOCOLS
        }
        table.add_row(*_serve_row(arrival, rate,
                                  cells["socketvia"], cells["tcp"]))
    table.add_note(_SERVE_NOTE)
    return table


def serve_points(
    hosts: int = SERVE_HOSTS,
    rates=None,
    bursty_rates=None,
    horizon: float = SERVE_HORIZON,
    seed: int = SERVE_SEED,
) -> PointPlan:
    """The ``serve`` panel as one point per (arrival, rate, protocol)."""
    axis = _serve_axis(rates or SERVE_RATES,
                       SERVE_BURSTY_RATES if bursty_rates is None
                       else bursty_rates)
    points = [
        Point("serve", "serve_cell",
              {"protocol": proto, "hosts": int(hosts),
               "rate_per_shard": rate, "horizon": float(horizon),
               "arrival": arrival, "seed": int(seed)})
        for arrival, rate in axis
        for proto in _PROTOCOLS
    ]

    def merge(values: List[Any]) -> ExperimentTable:
        table = _serve_table()
        for i, (arrival, rate) in enumerate(axis):
            sv, tcp = values[2 * i], values[2 * i + 1]
            table.add_row(*_serve_row(arrival, rate, sv, tcp))
        table.add_note(_SERVE_NOTE)
        return table

    return PointPlan("serve", points, merge)


def serve_scale_sweep(
    hosts_axis=None,
    rate_per_shard: float = SERVE_SCALE_RATE,
    horizon: float = SERVE_SCALE_HORIZON,
    seed: int = SERVE_SEED,
) -> ExperimentTable:
    """The ``serve_scale`` panel, serial path."""
    hosts_axis = [int(h) for h in (hosts_axis or SERVE_SCALE_HOSTS)]
    table = _scale_table()
    for hosts in hosts_axis:
        cells = {
            proto: serve_scale_cell(proto, hosts, rate_per_shard,
                                    horizon, "poisson", seed)
            for proto in _PROTOCOLS
        }
        table.add_row(hosts, hosts // 2,
                      cells["socketvia"][0], cells["tcp"][0],
                      cells["socketvia"][1], cells["tcp"][1])
    table.add_note(_SCALE_NOTE)
    return table


def serve_scale_points(
    hosts_axis=None,
    rate_per_shard: float = SERVE_SCALE_RATE,
    horizon: float = SERVE_SCALE_HORIZON,
    seed: int = SERVE_SEED,
) -> PointPlan:
    """The ``serve_scale`` panel as one point per (width, protocol)."""
    hosts_axis = [int(h) for h in (hosts_axis or SERVE_SCALE_HOSTS)]
    points = [
        Point("serve_scale", "serve_scale_cell",
              {"protocol": proto, "hosts": hosts,
               "rate_per_shard": float(rate_per_shard),
               "horizon": float(horizon), "arrival": "poisson",
               "seed": int(seed)})
        for hosts in hosts_axis
        for proto in _PROTOCOLS
    ]

    def merge(values: List[Any]) -> ExperimentTable:
        table = _scale_table()
        for i, hosts in enumerate(hosts_axis):
            sv, tcp = values[2 * i], values[2 * i + 1]
            table.add_row(hosts, hosts // 2, sv[0], tcp[0], sv[1], tcp[1])
        table.add_note(_SCALE_NOTE)
        return table

    return PointPlan("serve_scale", points, merge)


# ---------------------------------------------------------------------------
# serve_par — shard-parallel execution wall clock (repro.sim.partition)
# ---------------------------------------------------------------------------

#: Cluster width of the full-axis shard-parallel leg (the acceptance
#: bar's 1024-host run).
SERVE_PAR_HOSTS = 1024
#: Worker processes the parallel leg fans out over.
SERVE_PAR_JOBS = 4


def serve_parallel_benchmark(quick: bool = False) -> ExperimentTable:
    """The ``serve_par`` panel: one serving run, three execution modes.

    Times the *same* logical simulation (one SocketVIA serving run at a
    fixed per-shard load) three ways, all compared by
    :meth:`~repro.apps.serve.ServeResult.digest`:

    1. ``single_s`` — the ordinary single-process :func:`run_serve`;
    2. ``parallel_s`` — :func:`repro.sim.partition.run_serve_parallel`
       fanned out over ``--jobs`` worker processes, cold, populating a
       throwaway chunk cache;
    3. ``warm_s`` — the same sharded run against that cache (every
       chunk must hit).

    ``points``, ``events`` (chunking is a function of the shard count
    only), ``warm_hits`` and the ``identical`` digest verdict are
    deterministic and gated exactly.  The wall columns and derived
    speedups measure the host — ``speedup_parallel`` is bounded by the
    cores the host grants (see the ``host_cpus`` note) and everything
    wall-shaped is gated warn-only.
    """
    import os
    import shutil
    import tempfile
    import time

    from repro.bench.cache import ResultCache
    from repro.bench.executor import SweepExecutor
    from repro.sim.partition import run_serve_parallel

    config = ServeConfig(
        protocol="socketvia",
        hosts=64 if quick else SERVE_PAR_HOSTS,
        rate_per_shard=SERVE_SCALE_RATE,
        horizon=0.02 if quick else SERVE_SCALE_HORIZON,
        seed=SERVE_SEED,
    )
    t0 = time.perf_counter()
    single = run_serve(config)
    single_s = time.perf_counter() - t0

    cache_root = tempfile.mkdtemp(prefix="repro-servepar-cache-")
    try:
        cold_cache = ResultCache(cache_root)
        with SweepExecutor(jobs=SERVE_PAR_JOBS, cache=cold_cache) as ex:
            t0 = time.perf_counter()
            par, par_stats = run_serve_parallel(config, executor=ex)
            parallel_s = time.perf_counter() - t0

        warm_cache = ResultCache(cache_root)
        with SweepExecutor(jobs=1, cache=warm_cache) as ex:
            t0 = time.perf_counter()
            warm, _ = run_serve_parallel(config, executor=ex)
            warm_s = time.perf_counter() - t0
        warm_hits = warm_cache.hits
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    identical = single.digest() == par.digest() == warm.digest()
    table = ExperimentTable(
        "serve_par",
        "Shard-parallel serving: single process vs --jobs "
        f"{SERVE_PAR_JOBS} vs fully cached (digest-checked)",
        ["hosts", "shards", "points", "events", "single_s",
         "parallel_s", "speedup_parallel", "warm_s", "speedup_cache",
         "warm_hits", "identical"],
    )
    table.add_row(
        config.hosts, config.n_shards, par_stats["points"], par.events,
        round(single_s, 3), round(parallel_s, 3),
        ratio(single_s, parallel_s), round(warm_s, 3),
        ratio(single_s, warm_s), warm_hits,
        "yes" if identical else "no")
    table.add_note(
        f"host_cpus={os.cpu_count()}, parallel leg ran --jobs "
        f"{SERVE_PAR_JOBS}")
    table.add_note(
        "wall-clock columns measure the host (warn-only in compare); "
        "speedup_parallel is bounded by the cores the host grants — "
        "regenerate on a >=4-core host for the parallelism headline")
    return table
