"""Latency / bandwidth micro-benchmarks (paper Section 5.1, Figure 4).

Three experiments, each on a fresh two-node cluster:

* :func:`ping_pong_latency` — sockets ping-pong; reports one-way
  latency (half the mean round trip), the Figure 4(a) measurement.
* :func:`streaming_bandwidth` — sockets one-way stream with several
  messages outstanding; reports receiver-observed goodput, the
  Figure 4(b) measurement.
* :func:`via_ping_pong_latency` / :func:`via_streaming_bandwidth` —
  the same two measurements against the raw VIA provider (descriptors
  and completion queues, no sockets layer), giving the "VIA" series.

All functions build their own simulator and are deterministic.

The module also hosts the **kernel throughput suite**
(:func:`kernel_suite`, ``python -m repro bench run kernel``): seven
workloads exercising the simulation kernel itself — timeout chains,
process ping-pong, store churn, a TCP-style retransmit timer wheel,
deadline-timer cancellation, batched ``schedule_many`` bursts, and a
huge-pending-set timer flood.  Event counts, peak heap sizes, and the
``pool_hits`` / ``compactions`` fast-path counters are deterministic
(and gated exactly by the comparator); the wall-clock columns measure
the host and are gated warn-only.

:func:`queue_backend_suite` (the ``queues`` panel of the same bench
experiment) runs the queue-bound workloads once per event-queue
backend (``repro.sim.queues``) and reports the calendar/heap speedup.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.records import ExperimentTable
from repro.cluster.topology import Cluster
from repro.net.calibration import VIA_CLAN, get_model
from repro.net.model import ProtocolCostModel
from repro.sim.core import Simulator
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.resources import Store
from repro.sim.units import bytes_per_sec_to_mbps
from repro.sockets.factory import ProtocolAPI
from repro.via.descriptors import Descriptor
from repro.via.nic import ViaNic

__all__ = [
    "ping_pong_latency",
    "streaming_bandwidth",
    "via_ping_pong_latency",
    "via_streaming_bandwidth",
    "latency_series",
    "bandwidth_series",
    "MicrobenchResult",
    "KernelPoint",
    "kernel_timeout_chain",
    "kernel_process_pingpong",
    "kernel_store_churn",
    "kernel_timer_wheel",
    "kernel_timer_cancel",
    "kernel_schedule_burst",
    "kernel_timer_flood",
    "kernel_suite",
    "queue_backend_suite",
    "FLOOD_FULL_N",
]

PORT = 5000


@dataclass
class MicrobenchResult:
    """One micro-benchmark point."""

    protocol: str
    msg_size: int
    value: float  # seconds (latency) or bytes/s (bandwidth)

    @property
    def usec(self) -> float:
        """Latency in microseconds."""
        return self.value * 1e6

    @property
    def mbps(self) -> float:
        """Bandwidth in Mbps (10^6 bits)."""
        return bytes_per_sec_to_mbps(self.value)


def _two_nodes(seed: int = 1) -> Cluster:
    cluster = Cluster(seed=seed)
    cluster.add_fabric("clan")
    cluster.add_fabric("ethernet")
    cluster.add_hosts("node", 2)
    return cluster


# ---------------------------------------------------------------------------
# Sockets-level benchmarks
# ---------------------------------------------------------------------------


def ping_pong_latency(
    protocol: str,
    msg_size: int,
    iterations: int = 16,
    warmup: int = 2,
    **api_options,
) -> float:
    """Mean one-way latency (seconds) of *msg_size*-byte messages."""
    cluster = _two_nodes()
    api = ProtocolAPI(cluster, protocol, **api_options)
    sim = cluster.sim
    samples: List[float] = []

    def server():
        listener = api.listen("node01", PORT)
        sock = yield from listener.accept()
        for _ in range(iterations + warmup):
            msg = yield from sock.recv_message()
            yield from sock.send_message(msg.size)

    def client():
        sock = api.socket("node00")
        yield from sock.connect(("node01", PORT))
        for i in range(iterations + warmup):
            t0 = sim.now
            yield from sock.send_message(msg_size)
            yield from sock.recv_message()
            if i >= warmup:
                samples.append((sim.now - t0) / 2.0)

    sim.process(server())
    done = sim.process(client())
    sim.run(done)
    return sum(samples) / len(samples)


def streaming_bandwidth(
    protocol: str,
    msg_size: int,
    n_messages: int = 64,
    warmup: int = 8,
    **api_options,
) -> float:
    """Receiver-observed goodput (bytes/s) streaming *n_messages*.

    The first *warmup* messages prime the pipeline and are excluded
    from the measured window.
    """
    cluster = _two_nodes()
    api = ProtocolAPI(cluster, protocol, **api_options)
    sim = cluster.sim
    marks: Dict[str, float] = {}

    def server():
        listener = api.listen("node01", PORT)
        sock = yield from listener.accept()
        for i in range(n_messages):
            yield from sock.recv_message()
            if i == warmup - 1:
                marks["start"] = sim.now
        marks["end"] = sim.now

    def client():
        sock = api.socket("node00")
        yield from sock.connect(("node01", PORT))
        for _ in range(n_messages):
            yield from sock.send_message(msg_size)

    srv = sim.process(server())
    sim.process(client())
    sim.run(srv)
    span = marks["end"] - marks["start"]
    return (n_messages - warmup) * msg_size / span


# ---------------------------------------------------------------------------
# Raw VIA benchmarks (descriptor-level, no sockets layer)
# ---------------------------------------------------------------------------


def _via_pair(cluster: Cluster, model: Optional[ProtocolCostModel] = None):
    """Two connected VIs with generous pre-posted receive pools."""
    model = model or VIA_CLAN
    nic0 = ViaNic(cluster.host("node00"), cluster.fabric("clan"), model=model)
    nic1 = ViaNic(cluster.host("node01"), cluster.fabric("clan"), model=model)
    return nic0, nic1


def via_ping_pong_latency(
    msg_size: int,
    iterations: int = 16,
    warmup: int = 2,
    model: Optional[ProtocolCostModel] = None,
) -> float:
    """Raw-VIA one-way latency (seconds): post_send / reap_recv loop."""
    cluster = _two_nodes()
    sim = cluster.sim
    model = model or VIA_CLAN
    nic0, nic1 = _via_pair(cluster, model)
    samples: List[float] = []
    total = iterations + warmup

    def post_pool(nic, vi, n):
        for _ in range(n):
            vi.post_recv(Descriptor(memory=nic.memory.register_now(max(msg_size, 64))))

    def server():
        listener = nic1.listen(7)
        vi = yield from listener.wait_connection()
        post_pool(nic1, vi, total + 1)
        send_mem = nic1.memory.register_now(max(msg_size, 64))
        for _ in range(total):
            yield from vi.reap_recv()
            yield from vi.post_send(Descriptor(memory=send_mem, length=msg_size))

    def client():
        vi = nic0.make_vi()
        post_pool(nic0, vi, total + 1)
        yield from nic0.connect(vi, "node01", 7)
        send_mem = nic0.memory.register_now(max(msg_size, 64))
        for i in range(total):
            t0 = sim.now
            yield from vi.post_send(Descriptor(memory=send_mem, length=msg_size))
            yield from vi.reap_recv()
            if i >= warmup:
                samples.append((sim.now - t0) / 2.0)

    sim.process(server())
    done = sim.process(client())
    sim.run(done)
    return sum(samples) / len(samples)


def via_streaming_bandwidth(
    msg_size: int,
    n_messages: int = 64,
    warmup: int = 8,
    model: Optional[ProtocolCostModel] = None,
) -> float:
    """Raw-VIA goodput (bytes/s); descriptors pre-posted for the whole run."""
    cluster = _two_nodes()
    sim = cluster.sim
    model = model or VIA_CLAN
    nic0, nic1 = _via_pair(cluster, model)
    marks: Dict[str, float] = {}
    # VIA segments at its MTU internally; a "message" here is one
    # descriptor, so cap at the model MTU like a real descriptor would.
    per_desc = min(msg_size, model.mtu)
    n_descs = -(-msg_size // per_desc) * n_messages

    def server():
        listener = nic1.listen(7)
        vi = yield from listener.wait_connection()
        for _ in range(n_descs):
            vi.post_recv(Descriptor(memory=nic1.memory.register_now(per_desc)))
        got = 0
        for i in range(n_descs):
            yield from vi.reap_recv()
            got += 1
            if got == warmup:
                marks["start"] = sim.now
        marks["end"] = sim.now

    def client():
        vi = nic0.make_vi()
        yield from nic0.connect(vi, "node01", 7)
        send_mem = nic0.memory.register_now(per_desc)
        for _ in range(n_descs):
            yield from vi.post_send(Descriptor(memory=send_mem, length=per_desc))

    srv = sim.process(server())
    sim.process(client())
    sim.run(srv)
    span = marks["end"] - marks["start"]
    return (n_descs - warmup) * per_desc / span


# ---------------------------------------------------------------------------
# Figure-4 series
# ---------------------------------------------------------------------------


def latency_series(sizes, protocols=("via", "socketvia", "tcp")) -> List[MicrobenchResult]:
    """Figure 4(a): one-way latency for each protocol and size."""
    out = []
    for proto in protocols:
        for size in sizes:
            if proto == "via":
                value = via_ping_pong_latency(size)
            else:
                value = ping_pong_latency(proto, size)
            out.append(MicrobenchResult(proto, size, value))
    return out


def bandwidth_series(sizes, protocols=("via", "socketvia", "tcp")) -> List[MicrobenchResult]:
    """Figure 4(b): streaming bandwidth for each protocol and size."""
    out = []
    for proto in protocols:
        for size in sizes:
            if proto == "via":
                value = via_streaming_bandwidth(size)
            else:
                value = streaming_bandwidth(proto, size)
            out.append(MicrobenchResult(proto, size, value))
    return out


# ---------------------------------------------------------------------------
# Kernel throughput suite (`python -m repro bench run kernel`)
# ---------------------------------------------------------------------------
#
# Each workload builds a fresh Simulator, drives it to completion, and
# reports (events processed, the closed-form expected count, peak heap
# size, host wall time).  The expected count is part of the table so the
# suite's claims can assert exactness without re-deriving workload
# parameters: cancelled timers must contribute *zero* processed events.


@dataclass
class KernelPoint:
    """One kernel-workload measurement.

    ``pool_hits`` (events served from the timeout/event free lists),
    ``compactions`` (tombstone sweeps triggered by cancellation churn)
    and ``promotions`` (calendar-queue bucket promotions; 0 on the heap
    backend) are deterministic kernel counters — they gate the fast
    paths exactly, like ``events`` and ``heap_peak``.
    """

    workload: str
    events: int
    expected: int
    heap_peak: int
    wall_s: float
    pool_hits: int = 0
    compactions: int = 0
    promotions: int = 0

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def _point(workload: str, sim: Simulator, expected: int,
           wall: float) -> KernelPoint:
    """Package one finished workload run with its kernel counters."""
    return KernelPoint(
        workload, sim.events_processed, expected, sim.heap_peak, wall,
        pool_hits=sim.pool_hits, compactions=sim.compactions,
        promotions=getattr(sim._heap, "promotions", 0))


def kernel_timeout_chain(n: int = 200_000) -> KernelPoint:
    """One process yielding *n* back-to-back timeouts — the pure
    timeout-pool fast path (pop, fire, recycle; heap stays tiny)."""
    sim = Simulator()

    def proc(sim):
        t = sim.timeout
        for _ in range(n):
            yield t(1.0)

    Process(sim, proc(sim))
    t0 = _time.perf_counter()
    sim.run_all()
    wall = _time.perf_counter() - t0
    return _point("timeout_chain", sim, n + 2, wall)


def kernel_process_pingpong(rounds: int = 100_000) -> KernelPoint:
    """Two processes alternating on bare events — the single-waiter
    resume fast path (no callback lists, no intermediate objects)."""
    sim = Simulator()
    state: Dict[str, Event] = {}

    def ping(sim):
        for _ in range(rounds):
            ev = Event(sim)
            state["ball"] = ev
            yield ev

    def pong(sim):
        for _ in range(rounds):
            yield sim.timeout(0)
            state["ball"].succeed()

    Process(sim, ping(sim))
    Process(sim, pong(sim))
    t0 = _time.perf_counter()
    sim.run_all()
    wall = _time.perf_counter() - t0
    return _point("process_pingpong", sim, 2 * rounds + 4, wall)


def kernel_store_churn(n: int = 100_000, capacity: int = 16) -> KernelPoint:
    """Producer/consumer through a bounded Store — resource events,
    waiter queues, and the Event free list."""
    sim = Simulator()
    store = Store(sim, capacity=capacity)

    def producer(sim):
        for i in range(n):
            yield store.put(i)

    def consumer(sim):
        for _ in range(n):
            yield store.get()

    Process(sim, producer(sim))
    Process(sim, consumer(sim))
    t0 = _time.perf_counter()
    sim.run_all()
    wall = _time.perf_counter() - t0
    return _point("store_churn", sim, 2 * n + 4, wall)


def kernel_timer_wheel(
    conns: int = 20_000,
    rearms_per_tick: int = 1_000,
    ticks: int = 200,
    horizon: float = 100.0,
) -> KernelPoint:
    """TCP-style retransmit timers: a far-horizon timer per connection,
    re-armed (cancel + new timeout) in bulk every tick.  Almost every
    scheduled timer is cancelled before it can fire — the lazy-
    cancellation + graveyard-reuse path.  Only the last-armed timer per
    connection, the tick timeouts, and process bookkeeping fire."""
    sim = Simulator()

    def noop(ev):
        pass

    timers: List[Optional[Event]] = [None] * conns

    def driver(sim):
        nxt = 0
        for _ in range(ticks):
            for _ in range(rearms_per_tick):
                old = timers[nxt]
                if old is not None and not old.processed:
                    old.cancel()
                t = sim.timeout(horizon)
                t.add_callback(noop)
                timers[nxt] = t
                nxt = (nxt + 1) % conns
            yield sim.timeout(1.0)

    Process(sim, driver(sim))
    t0 = _time.perf_counter()
    sim.run_all()
    wall = _time.perf_counter() - t0
    return _point("timer_wheel", sim, conns + ticks + 2, wall)


def kernel_timer_cancel(
    live: int = 2_048, cancels: int = 20_000, horizon: float = 1_000.0,
    queue: Optional[str] = None,
) -> KernelPoint:
    """A fixed population of deadline timers, repeatedly cancelled and
    replaced while references are held.  Exactly the *live* survivors
    fire; every cancelled timer must be dropped without a heap rebuild."""
    sim = Simulator(queue=queue)
    timers = [sim.timeout(horizon + i) for i in range(live)]
    t0 = _time.perf_counter()
    for k in range(cancels):
        j = k % live
        timers[j].cancel()
        timers[j] = sim.timeout(horizon + j)
    sim.run_all()
    wall = _time.perf_counter() - t0
    return _point("timer_cancel", sim, live, wall)


def kernel_schedule_burst(bursts: int = 200, size: int = 1_000) -> KernelPoint:
    """Pre-succeeded events scheduled *size* at a time through
    ``schedule_many`` — the batched enqueue path transports use for
    multi-segment messages."""
    sim = Simulator()

    def noop(event):
        pass

    total = 0
    t0 = _time.perf_counter()
    for _ in range(bursts):
        pairs = []
        for i in range(size):
            ev = Event(sim)
            ev._ok = True
            ev._value = None
            ev.callbacks = noop
            pairs.append((ev, float(i % 7)))
            total += 1
        sim.schedule_many(pairs)
        sim.run_all()
    wall = _time.perf_counter() - t0
    return _point("schedule_burst", sim, total, wall)


#: Full-axis pending population for the timer flood.  Below a few
#: hundred thousand pending timers, C-accelerated heap sifts beat the
#: calendar queue's interpreter-level bucket plumbing; at a million the
#: O(1)-vs-O(log n) asymptotics dominate — every heap sift walks a
#: ~20-level path scattered across a million-entry array while the
#: calendar's near heap stays cache-resident — and the calendar backend
#: is reliably faster, so the suite's speedup claim gates only here.
FLOOD_FULL_N = 1_000_000


def kernel_timer_flood(
    n: int = FLOOD_FULL_N,
    span: int = 512,
    queue: Optional[str] = None,
) -> KernelPoint:
    """*n* pre-armed timers spread across *span* simulated seconds,
    scheduled up front and drained to empty — the huge-pending-set
    regime.  Every heap push/pop pays O(log n) on the full population;
    the calendar backend pays amortized O(1) per event.  Every timer
    fires (no cancellation), so expected == n exactly."""
    sim = Simulator(queue=queue)
    timeout = sim.timeout
    t0 = _time.perf_counter()
    for i in range(n):
        # A full-period stride through [0, span): every bucket is hit,
        # in a deterministic shuffled order.
        timeout(((i * 7919) % (span * 1000)) / 1000.0)
    sim.run_all()
    wall = _time.perf_counter() - t0
    return _point("timer_flood", sim, n, wall)


def kernel_suite(quick: bool = False) -> ExperimentTable:
    """Run the seven kernel workloads and tabulate them.

    ``events``, ``expected_events``, ``heap_peak``, ``pool_hits`` and
    ``compactions`` are deterministic simulation outputs; ``wall_s`` /
    ``events_per_sec`` measure the host running the suite (the
    comparator gates them warn-only).
    """
    if quick:
        points = [
            kernel_timeout_chain(20_000),
            kernel_process_pingpong(10_000),
            kernel_store_churn(10_000),
            kernel_timer_wheel(conns=2_000, rearms_per_tick=100, ticks=50),
            kernel_timer_cancel(live=256, cancels=2_000),
            kernel_schedule_burst(bursts=20, size=500),
            kernel_timer_flood(10_000, span=64),
        ]
    else:
        points = [
            kernel_timeout_chain(),
            kernel_process_pingpong(),
            kernel_store_churn(),
            kernel_timer_wheel(),
            kernel_timer_cancel(),
            kernel_schedule_burst(),
            kernel_timer_flood(100_000),
        ]
    table = ExperimentTable(
        "kernel",
        "Simulation-kernel throughput (events/sec per workload)",
        ["workload", "events", "expected_events", "heap_peak",
         "pool_hits", "compactions", "wall_s", "events_per_sec"],
    )
    total_ev = 0
    total_wall = 0.0
    for p in points:
        total_ev += p.events
        total_wall += p.wall_s
        table.add_row(p.workload, p.events, p.expected, p.heap_peak,
                      p.pool_hits, p.compactions,
                      round(p.wall_s, 4), round(p.events_per_sec, 1))
    table.add_row("TOTAL", total_ev, sum(p.expected for p in points),
                  max(p.heap_peak for p in points),
                  sum(p.pool_hits for p in points),
                  sum(p.compactions for p in points),
                  round(total_wall, 4),
                  round(total_ev / total_wall, 1) if total_wall > 0 else 0.0)
    table.add_note(
        "events/expected_events/heap_peak/pool_hits/compactions are "
        "deterministic; wall_s and events_per_sec measure the host and "
        "vary run to run.")
    return table


def queue_backend_suite(quick: bool = False) -> ExperimentTable:
    """Event-queue backends head to head on queue-bound workloads.

    Runs :func:`kernel_timer_flood` (huge pending set — the calendar
    queue's sweet spot) and :func:`kernel_timer_cancel` (cancellation
    churn and compaction sweeps) once per backend.  ``events`` /
    ``expected_events`` / ``heap_peak`` / ``promotions`` are
    deterministic and must agree with the closed forms on *every*
    backend — that is the suite's correctness claim.  The wall columns
    and the derived ``speedup_calendar`` (calendar events/s over heap
    events/s, same workload) measure the host and are gated warn-only;
    the >= 1.3x flood speedup claim applies only at the full-axis
    population (quick floods are too small for calendar asymptotics to
    beat C-heap constants — that regime is exactly why the ``auto``
    backend exists).
    """
    flood_n = 20_000 if quick else FLOOD_FULL_N
    flood_span = 64 if quick else 512
    cancel_kwargs = ({"live": 256, "cancels": 2_000} if quick else {})
    workloads = [
        ("timer_flood",
         lambda q: kernel_timer_flood(flood_n, span=flood_span, queue=q)),
        ("timer_cancel",
         lambda q: kernel_timer_cancel(queue=q, **cancel_kwargs)),
    ]
    table = ExperimentTable(
        "queues",
        "Event-queue backends head to head (binary heap vs calendar)",
        ["workload", "backend", "events", "expected_events", "heap_peak",
         "promotions", "wall_s", "events_per_sec", "speedup_calendar"],
    )
    for name, run in workloads:
        points = {b: run(b) for b in ("heap", "calendar")}
        base = points["heap"].events_per_sec
        for backend in ("heap", "calendar"):
            p = points[backend]
            speedup = (round(p.events_per_sec / base, 2)
                       if backend == "calendar" and base > 0 else None)
            table.add_row(name, backend, p.events, p.expected,
                          p.heap_peak, p.promotions, round(p.wall_s, 4),
                          round(p.events_per_sec, 1), speedup)
    table.add_note(
        f"timer_flood population n={flood_n}; speedup_calendar = "
        "calendar events/s over heap events/s (host-dependent, gated "
        "warn-only).")
    return table
