"""Latency / bandwidth micro-benchmarks (paper Section 5.1, Figure 4).

Three experiments, each on a fresh two-node cluster:

* :func:`ping_pong_latency` — sockets ping-pong; reports one-way
  latency (half the mean round trip), the Figure 4(a) measurement.
* :func:`streaming_bandwidth` — sockets one-way stream with several
  messages outstanding; reports receiver-observed goodput, the
  Figure 4(b) measurement.
* :func:`via_ping_pong_latency` / :func:`via_streaming_bandwidth` —
  the same two measurements against the raw VIA provider (descriptors
  and completion queues, no sockets layer), giving the "VIA" series.

All functions build their own simulator and are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.topology import Cluster
from repro.net.calibration import VIA_CLAN, get_model
from repro.net.model import ProtocolCostModel
from repro.sim.units import bytes_per_sec_to_mbps
from repro.sockets.factory import ProtocolAPI
from repro.via.descriptors import Descriptor
from repro.via.nic import ViaNic

__all__ = [
    "ping_pong_latency",
    "streaming_bandwidth",
    "via_ping_pong_latency",
    "via_streaming_bandwidth",
    "latency_series",
    "bandwidth_series",
    "MicrobenchResult",
]

PORT = 5000


@dataclass
class MicrobenchResult:
    """One micro-benchmark point."""

    protocol: str
    msg_size: int
    value: float  # seconds (latency) or bytes/s (bandwidth)

    @property
    def usec(self) -> float:
        """Latency in microseconds."""
        return self.value * 1e6

    @property
    def mbps(self) -> float:
        """Bandwidth in Mbps (10^6 bits)."""
        return bytes_per_sec_to_mbps(self.value)


def _two_nodes(seed: int = 1) -> Cluster:
    cluster = Cluster(seed=seed)
    cluster.add_fabric("clan")
    cluster.add_fabric("ethernet")
    cluster.add_hosts("node", 2)
    return cluster


# ---------------------------------------------------------------------------
# Sockets-level benchmarks
# ---------------------------------------------------------------------------


def ping_pong_latency(
    protocol: str,
    msg_size: int,
    iterations: int = 16,
    warmup: int = 2,
    **api_options,
) -> float:
    """Mean one-way latency (seconds) of *msg_size*-byte messages."""
    cluster = _two_nodes()
    api = ProtocolAPI(cluster, protocol, **api_options)
    sim = cluster.sim
    samples: List[float] = []

    def server():
        listener = api.listen("node01", PORT)
        sock = yield from listener.accept()
        for _ in range(iterations + warmup):
            msg = yield from sock.recv_message()
            yield from sock.send_message(msg.size)

    def client():
        sock = api.socket("node00")
        yield from sock.connect(("node01", PORT))
        for i in range(iterations + warmup):
            t0 = sim.now
            yield from sock.send_message(msg_size)
            yield from sock.recv_message()
            if i >= warmup:
                samples.append((sim.now - t0) / 2.0)

    sim.process(server())
    done = sim.process(client())
    sim.run(done)
    return sum(samples) / len(samples)


def streaming_bandwidth(
    protocol: str,
    msg_size: int,
    n_messages: int = 64,
    warmup: int = 8,
    **api_options,
) -> float:
    """Receiver-observed goodput (bytes/s) streaming *n_messages*.

    The first *warmup* messages prime the pipeline and are excluded
    from the measured window.
    """
    cluster = _two_nodes()
    api = ProtocolAPI(cluster, protocol, **api_options)
    sim = cluster.sim
    marks: Dict[str, float] = {}

    def server():
        listener = api.listen("node01", PORT)
        sock = yield from listener.accept()
        for i in range(n_messages):
            yield from sock.recv_message()
            if i == warmup - 1:
                marks["start"] = sim.now
        marks["end"] = sim.now

    def client():
        sock = api.socket("node00")
        yield from sock.connect(("node01", PORT))
        for _ in range(n_messages):
            yield from sock.send_message(msg_size)

    srv = sim.process(server())
    sim.process(client())
    sim.run(srv)
    span = marks["end"] - marks["start"]
    return (n_messages - warmup) * msg_size / span


# ---------------------------------------------------------------------------
# Raw VIA benchmarks (descriptor-level, no sockets layer)
# ---------------------------------------------------------------------------


def _via_pair(cluster: Cluster, model: Optional[ProtocolCostModel] = None):
    """Two connected VIs with generous pre-posted receive pools."""
    model = model or VIA_CLAN
    nic0 = ViaNic(cluster.host("node00"), cluster.fabric("clan"), model=model)
    nic1 = ViaNic(cluster.host("node01"), cluster.fabric("clan"), model=model)
    return nic0, nic1


def via_ping_pong_latency(
    msg_size: int,
    iterations: int = 16,
    warmup: int = 2,
    model: Optional[ProtocolCostModel] = None,
) -> float:
    """Raw-VIA one-way latency (seconds): post_send / reap_recv loop."""
    cluster = _two_nodes()
    sim = cluster.sim
    model = model or VIA_CLAN
    nic0, nic1 = _via_pair(cluster, model)
    samples: List[float] = []
    total = iterations + warmup

    def post_pool(nic, vi, n):
        for _ in range(n):
            vi.post_recv(Descriptor(memory=nic.memory.register_now(max(msg_size, 64))))

    def server():
        listener = nic1.listen(7)
        vi = yield from listener.wait_connection()
        post_pool(nic1, vi, total + 1)
        send_mem = nic1.memory.register_now(max(msg_size, 64))
        for _ in range(total):
            yield from vi.reap_recv()
            yield from vi.post_send(Descriptor(memory=send_mem, length=msg_size))

    def client():
        vi = nic0.make_vi()
        post_pool(nic0, vi, total + 1)
        yield from nic0.connect(vi, "node01", 7)
        send_mem = nic0.memory.register_now(max(msg_size, 64))
        for i in range(total):
            t0 = sim.now
            yield from vi.post_send(Descriptor(memory=send_mem, length=msg_size))
            yield from vi.reap_recv()
            if i >= warmup:
                samples.append((sim.now - t0) / 2.0)

    sim.process(server())
    done = sim.process(client())
    sim.run(done)
    return sum(samples) / len(samples)


def via_streaming_bandwidth(
    msg_size: int,
    n_messages: int = 64,
    warmup: int = 8,
    model: Optional[ProtocolCostModel] = None,
) -> float:
    """Raw-VIA goodput (bytes/s); descriptors pre-posted for the whole run."""
    cluster = _two_nodes()
    sim = cluster.sim
    model = model or VIA_CLAN
    nic0, nic1 = _via_pair(cluster, model)
    marks: Dict[str, float] = {}
    # VIA segments at its MTU internally; a "message" here is one
    # descriptor, so cap at the model MTU like a real descriptor would.
    per_desc = min(msg_size, model.mtu)
    n_descs = -(-msg_size // per_desc) * n_messages

    def server():
        listener = nic1.listen(7)
        vi = yield from listener.wait_connection()
        for _ in range(n_descs):
            vi.post_recv(Descriptor(memory=nic1.memory.register_now(per_desc)))
        got = 0
        for i in range(n_descs):
            yield from vi.reap_recv()
            got += 1
            if got == warmup:
                marks["start"] = sim.now
        marks["end"] = sim.now

    def client():
        vi = nic0.make_vi()
        yield from nic0.connect(vi, "node01", 7)
        send_mem = nic0.memory.register_now(per_desc)
        for _ in range(n_descs):
            yield from vi.post_send(Descriptor(memory=send_mem, length=per_desc))

    srv = sim.process(server())
    sim.process(client())
    sim.run(srv)
    span = marks["end"] - marks["start"]
    return (n_descs - warmup) * per_desc / span


# ---------------------------------------------------------------------------
# Figure-4 series
# ---------------------------------------------------------------------------


def latency_series(sizes, protocols=("via", "socketvia", "tcp")) -> List[MicrobenchResult]:
    """Figure 4(a): one-way latency for each protocol and size."""
    out = []
    for proto in protocols:
        for size in sizes:
            if proto == "via":
                value = via_ping_pong_latency(size)
            else:
                value = ping_pong_latency(proto, size)
            out.append(MicrobenchResult(proto, size, value))
    return out


def bandwidth_series(sizes, protocols=("via", "socketvia", "tcp")) -> List[MicrobenchResult]:
    """Figure 4(b): streaming bandwidth for each protocol and size."""
    out = []
    for proto in protocols:
        for size in sizes:
            if proto == "via":
                value = via_streaming_bandwidth(size)
            else:
                value = streaming_bandwidth(proto, size)
            out.append(MicrobenchResult(proto, size, value))
    return out
