"""The measurement layer: benchmarks, baselines, and generated docs.

Submodules
----------
``figures`` / ``microbench``
    The experiment drivers — one function per paper figure, plus the
    ``*_points()`` sweep decompositions the executor runs.
``suites``
    What the harness runs and how a run is judged (anchors, claims).
``executor`` / ``cache``
    The point-sweep executor: serial or process-pool fan-out over pure
    figure points, with a content-addressed on-disk result cache.
``runner`` / ``schema`` / ``baselines``
    Execute a suite, capture it as a schema-versioned
    ``BENCH_<experiment>.json`` record, and manage the committed
    baselines under ``benchmarks/baselines/``.
``comparator``
    Regression gate: diff a run against its baseline with tolerance
    bands (``pass``/``warn``/``fail``).
``report``
    Regenerate ``docs/EXPERIMENTS_GENERATED.md`` and the marked tables
    in ``EXPERIMENTS.md`` from the committed records.

The CLI front end is ``python -m repro bench run|compare|report|list``;
the pytest benchmarks under ``benchmarks/`` are thin adapters over the
same suites.
"""

from repro.bench.cache import ResultCache, code_fingerprint
from repro.bench.comparator import Comparison, MetricDiff, Tolerance, compare_records
from repro.bench.executor import Point, PointPlan, SweepExecutor
from repro.bench.records import ExperimentTable, fmt, ratio
from repro.bench.runner import TraceAggregator, run_experiment
from repro.bench.schema import SCHEMA_VERSION, BenchRecord, SchemaError
from repro.bench.suites import (
    FIGURES,
    PLANS,
    SUITES,
    Anchor,
    BenchSuite,
    Claim,
    get_suite,
    suite_names,
)

__all__ = [
    "ExperimentTable",
    "fmt",
    "ratio",
    "BenchRecord",
    "SchemaError",
    "SCHEMA_VERSION",
    "Anchor",
    "Claim",
    "BenchSuite",
    "SUITES",
    "FIGURES",
    "PLANS",
    "get_suite",
    "suite_names",
    "run_experiment",
    "TraceAggregator",
    "Point",
    "PointPlan",
    "SweepExecutor",
    "ResultCache",
    "code_fingerprint",
    "Tolerance",
    "MetricDiff",
    "Comparison",
    "compare_records",
]
