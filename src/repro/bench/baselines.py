"""Where benchmark records live on disk.

Two directories, one policy:

* ``benchmarks/baselines/`` — the **committed** reference records
  (``BENCH_<experiment>.json``), regenerated intentionally via
  ``python -m repro bench run <exp> --update-baseline``;
* ``benchmarks/results/`` — **scratch** output of local runs and the
  pytest benchmarks; gitignored, safe to delete.

Both resolve relative to the current working directory (the repo root
in every documented workflow) and can be pinned with the
``REPRO_BENCH_BASELINES`` / ``REPRO_BENCH_RESULTS`` environment
variables — the benchmarks' ``conftest.py`` sets the latter to its own
file-relative path so pytest output lands in the same place no matter
where pytest is invoked from.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.bench.schema import BenchRecord

__all__ = [
    "baseline_dir",
    "results_dir",
    "record_path",
    "discover",
    "load_record",
    "store_record",
    "load_all",
]

_PREFIX = "BENCH_"
_SUFFIX = ".json"


def baseline_dir(override: Optional[str] = None) -> str:
    """The committed-baseline directory (override > env > default)."""
    return (override
            or os.environ.get("REPRO_BENCH_BASELINES")
            or os.path.join("benchmarks", "baselines"))


def results_dir(override: Optional[str] = None) -> str:
    """The scratch-results directory (override > env > default)."""
    return (override
            or os.environ.get("REPRO_BENCH_RESULTS")
            or os.path.join("benchmarks", "results"))


def record_path(directory: str, experiment: str) -> str:
    """``{directory}/BENCH_{experiment}.json``."""
    return os.path.join(directory, f"{_PREFIX}{experiment}{_SUFFIX}")


def discover(directory: str) -> Dict[str, str]:
    """Experiment id -> path for every ``BENCH_*.json`` in *directory*
    (empty when the directory does not exist)."""
    if not os.path.isdir(directory):
        return {}
    found = {}
    for name in sorted(os.listdir(directory)):
        if name.startswith(_PREFIX) and name.endswith(_SUFFIX):
            exp = name[len(_PREFIX):-len(_SUFFIX)]
            found[exp] = os.path.join(directory, name)
    return found


def load_record(directory: str, experiment: str) -> BenchRecord:
    """Load one experiment's record (FileNotFoundError when absent)."""
    return BenchRecord.load(record_path(directory, experiment))


def store_record(record: BenchRecord, directory: str) -> str:
    """Write *record* into *directory* (created if needed); returns the path."""
    os.makedirs(directory, exist_ok=True)
    return record.save(record_path(directory, record.experiment))


def load_all(directory: str, experiments: Optional[List[str]] = None) -> List[BenchRecord]:
    """Load every (or the named) records from *directory*, sorted by id."""
    found = discover(directory)
    names = sorted(found) if experiments is None else experiments
    records = []
    for exp in names:
        if exp not in found:
            raise FileNotFoundError(
                f"no {_PREFIX}{exp}{_SUFFIX} in {directory!r} "
                f"(have: {sorted(found) or 'none'})")
        records.append(BenchRecord.load(found[exp]))
    return records
