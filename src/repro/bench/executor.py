"""Parallel point-sweep executor for the figure experiments.

Every paper figure is a sweep of *independent* simulation points —
message sizes, rate/latency guarantees, query mixes, slowdown factors.
``repro.bench.figures`` decomposes each figure into a list of pure
:class:`Point` work items plus a deterministic merge
(:class:`PointPlan`); this module executes those points through a
pluggable backend:

* ``serial`` (``jobs=1``) — in the current process, the default;
* ``process`` (``jobs>1``) — a ``concurrent.futures.ProcessPoolExecutor``
  fan-out, one figure point per task.

Both backends run every point under its own tracer/aggregator (the
worker function :func:`execute_point` is shared), and results are
merged **in point order, never completion order**, so the resulting
table — and the per-kind trace roll-up — is bit-identical no matter
how many workers ran or which finished first.

A :class:`~repro.bench.cache.ResultCache` can be layered in front:
points whose content-addressed key is already stored return instantly
with the exact value *and* execution profile (events, trace kinds) of
the original run, so a fully-cached rerun reproduces the cold record
bit-for-bit at near-zero cost.

``jobs`` resolution: explicit argument > ``REPRO_JOBS`` env > 1;
``jobs=0`` means "one worker per CPU".

:func:`sweep_benchmark` is the meta-suite behind
``python -m repro bench run sweep``: it times the fig04+fig08 sweeps
serial, parallel, and fully cached, and records the speedups (host
wall-clock, gated warn-only by the comparator).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.bench.cache import ResultCache
from repro.bench.records import ExperimentTable, ratio

__all__ = [
    "Point",
    "PointResult",
    "PointPlan",
    "SweepExecutor",
    "execute_point",
    "resolve_jobs",
    "merge_kinds",
    "layers_from_kinds",
    "sweep_benchmark",
    "SWEEP_SUITES",
    "SWEEP_JOBS",
]


@dataclass(frozen=True)
class Point:
    """One pure unit of sweep work: ``POINT_FNS[fn](**params)``.

    ``params`` must be JSON-canonical (scalars, lists, dicts) — they
    feed both the pickled process-pool task and the content-addressed
    cache key.
    """

    figure: str  # panel id the point belongs to ("4a", "8b", ...)
    fn: str      # name in repro.bench.figures.POINT_FNS
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class PointResult:
    """A point's value plus its deterministic execution profile."""

    value: Any
    events: int                          # simulation events the point consumed
    kinds: Dict[str, Dict[str, float]]   # per-trace-kind {"events", "time_s"}
    cached: bool = False


@dataclass
class PointPlan:
    """A figure decomposed: the points and how to merge their values.

    ``merge`` receives the point values **in plan order** and must
    rebuild the exact table the serial driver produces — the
    parametrized determinism tests in ``tests/test_bench_executor.py``
    hold every plan to that row-for-row contract.
    """

    figure: str
    points: List[Point]
    merge: Callable[[List[Any]], ExperimentTable]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit > ``REPRO_JOBS`` env > 1 (0 = CPU count)."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "")
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def execute_point(spec: Tuple) -> Dict[str, Any]:
    """Run one point under its own tracer; the shared worker function.

    Executed in-process (serial backend) and in pool workers (process
    backend) alike, so both produce the same per-point profile.  The
    value is canonicalized through a JSON round-trip, making a fresh
    result bit-identical to one later read back from the cache.

    *spec* is ``(figure, fn, params)``, optionally extended with a
    fourth element — the ambient :class:`~repro.faults.FaultPlan` as a
    dict (or None) — a fifth: the simulation mode the point must run
    under (see :func:`repro.sim.flow.simulation_mode`) — a sixth: the
    ambient :class:`~repro.cache.CacheConfig` as a dict (or None) —
    and a seventh: the ambient
    :class:`~repro.datacutter.scheduling.ReplicationPolicy` as a dict
    (or None).  The executor ships them when set, so pool workers —
    separate processes that never saw the parent's ambient state —
    reinstall the same plan, mode, cache configuration, and
    replication policy.
    """
    from repro.bench.figures import POINT_FNS
    from repro.bench.runner import TraceAggregator
    from repro.cache import CacheConfig, configured
    from repro.datacutter.scheduling import ReplicationPolicy, replicating
    from repro.faults import FaultPlan, injecting
    from repro.sim.core import global_events_processed
    from repro.sim.flow import simulation_mode
    from repro.sim.trace import Tracer, tracing

    figure, fn, params = spec[:3]
    plan_dict = spec[3] if len(spec) > 3 else None
    mode = spec[4] if len(spec) > 4 else None
    cfg_dict = spec[5] if len(spec) > 5 else None
    rep_dict = spec[6] if len(spec) > 6 else None
    plan = None if plan_dict is None else FaultPlan.from_dict(plan_dict)
    cache_cfg = None if cfg_dict is None else CacheConfig.from_dict(cfg_dict)
    policy = (None if rep_dict is None
              else ReplicationPolicy.from_dict(rep_dict))
    agg = TraceAggregator()
    tracer = Tracer()
    tracer.subscribe("", agg)
    before = global_events_processed()
    with simulation_mode(mode), injecting(plan), configured(cache_cfg), \
            replicating(policy), tracing(tracer, record=False):
        value = POINT_FNS[fn](**params)
    return {
        "value": json.loads(json.dumps(value)),
        "events": global_events_processed() - before,
        "kinds": agg.kinds(),
    }


def merge_kinds(
    parts: Iterable[Dict[str, Dict[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Sum per-kind profiles across points, in iteration order.

    Event counts are integral (exact under any grouping); ``time_s``
    floats are accumulated in the deterministic plan order, so serial
    and parallel runs sum in the same sequence and agree bitwise.
    """
    events: Dict[str, int] = {}
    times: Dict[str, float] = {}
    for part in parts:
        for kind, stats in part.items():
            events[kind] = events.get(kind, 0) + int(stats["events"])
            times[kind] = times.get(kind, 0.0) + float(stats["time_s"])
    return {kind: {"events": events[kind], "time_s": times[kind]}
            for kind in sorted(events)}


def layers_from_kinds(
    kinds: Dict[str, Dict[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Roll a per-kind profile up to trace layers (see ``sim.trace``)."""
    from repro.sim.trace import layer_of

    out: Dict[str, Dict[str, float]] = {}
    for kind, stats in kinds.items():
        bucket = out.setdefault(layer_of(kind), {"events": 0, "time_s": 0.0})
        bucket["events"] += stats["events"]
        bucket["time_s"] += stats["time_s"]
    return out


class SweepExecutor:
    """Executes point plans with a shared worker pool and result cache.

    One instance per "session" — a ``bench run`` invocation, the pytest
    benchmark session, a sweep-benchmark configuration — so every plan
    executed through it shares the (lazily created) process pool and
    the cache hit/miss accounting.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self._pool: Optional[ProcessPoolExecutor] = None

    @classmethod
    def from_env(cls) -> "SweepExecutor":
        """Executor configured purely from the environment:
        ``REPRO_JOBS`` workers, caching on unless ``REPRO_BENCH_NO_CACHE``."""
        disabled = os.environ.get("REPRO_BENCH_NO_CACHE", "") not in ("", "0")
        return cls(jobs=None, cache=None if disabled else ResultCache())

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def run(self, points: List[Point], progress=None) -> List[PointResult]:
        """Execute *points*; results come back in input order.

        Cache lookups happen first; only misses are dispatched (to the
        pool when ``jobs>1`` and more than one point misses).
        """
        results: List[Optional[PointResult]] = [None] * len(points)
        keys: Dict[int, str] = {}
        pending: List[int] = []
        for i, point in enumerate(points):
            if self.cache is not None:
                key = self.cache.key(point.figure, point.fn, point.params)
                payload = self.cache.get(key)
                if payload is not None:
                    results[i] = PointResult(
                        payload["value"], int(payload["events"]),
                        payload["kinds"], cached=True)
                    continue
                keys[i] = key
            pending.append(i)
        if progress is not None and points:
            progress(f"sweep {points[0].figure}: {len(points)} point(s), "
                     f"{len(points) - len(pending)} cached, "
                     f"{len(pending)} to run (jobs={self.jobs})")
        if pending:
            from repro.cache import active_cache_config
            from repro.datacutter.scheduling import (
                active_replication_policy,
            )
            from repro.faults import active_plan
            from repro.sim.flow import resolve_sim_mode

            ambient = active_plan()
            plan_dict = (ambient.to_dict()
                         if ambient is not None and not ambient.is_empty
                         else None)
            mode = resolve_sim_mode()
            cache_cfg = active_cache_config()
            cfg_dict = None if cache_cfg is None else cache_cfg.to_dict()
            policy = active_replication_policy()
            rep_dict = None if policy is None else policy.to_dict()
            if (mode == "packet" and plan_dict is None
                    and cfg_dict is None and rep_dict is None):
                extra = ()  # default state: keep the legacy 3-tuple spec
            else:
                extra = (plan_dict, mode, cfg_dict, rep_dict)
            specs = [(points[i].figure, points[i].fn, dict(points[i].params))
                     + extra
                     for i in pending]
            if self.jobs > 1 and len(pending) > 1:
                outs = list(self._ensure_pool().map(execute_point, specs))
            else:
                outs = [execute_point(spec) for spec in specs]
            for i, out in zip(pending, outs):
                results[i] = PointResult(
                    out["value"], out["events"], out["kinds"], cached=False)
                if self.cache is not None:
                    point = points[i]
                    self.cache.put(keys[i], point.figure, point.fn,
                                   dict(point.params), out["value"],
                                   out["events"], out["kinds"])
        return results  # type: ignore[return-value]

    def table(self, plan: PointPlan, progress=None) -> ExperimentTable:
        """Execute a plan and merge it back into its figure table."""
        results = self.run(plan.points, progress=progress)
        return plan.merge([r.value for r in results])

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The sweep meta-benchmark (``python -m repro bench run sweep``)
# ---------------------------------------------------------------------------

#: Suites the sweep benchmark times (the two heaviest figure sweeps).
SWEEP_SUITES = ("fig04", "fig08")

#: Worker count for the parallel leg.
SWEEP_JOBS = 4


def _run_plans(plans, executor) -> Tuple[List[ExperimentTable], int, int]:
    """Run every plan through *executor*; (tables, points, events)."""
    tables, n_points, events = [], 0, 0
    for plan in plans:
        results = executor.run(plan.points)
        tables.append(plan.merge([r.value for r in results]))
        n_points += len(plan.points)
        events += sum(r.events for r in results)
    return tables, n_points, events


def sweep_benchmark(quick: bool = False, jobs: int = SWEEP_JOBS) -> ExperimentTable:
    """Time the fig04+fig08 sweeps serial, parallel, and fully cached.

    Three legs per figure suite, all over the same point decomposition:

    1. ``serial_s`` — ``jobs=1``, cold, populating a throwaway cache;
    2. ``parallel_s`` — ``jobs=4``, cold, no cache;
    3. ``warm_s`` — ``jobs=1`` rerun against the leg-1 cache (every
       point hits).

    Wall-clock columns and the derived speedups measure the *host* (a
    single-core host bounds ``speedup_parallel`` at ~1x — see the
    ``host_cpus`` note) and are gated warn-only; ``points``, ``events``,
    ``warm_hits`` and the ``identical`` verdict are deterministic.
    """
    import shutil
    import tempfile
    import time

    from repro.bench.suites import PLANS, get_suite

    table = ExperimentTable(
        "sweep",
        "Point-sweep executor wall clock: serial vs --jobs "
        f"{jobs} vs fully cached",
        ["sweep", "points", "events", "serial_s", "parallel_s",
         "speedup_parallel", "warm_s", "speedup_cache", "warm_hits",
         "identical"],
    )
    tot_points = tot_events = tot_hits = 0
    tot_serial = tot_par = tot_warm = 0.0
    all_identical = True
    for bench_id in SWEEP_SUITES:
        suite = get_suite(bench_id)
        plans = [PLANS[p](quick) for p in suite.panels]

        cache_root = tempfile.mkdtemp(prefix="repro-sweep-cache-")
        try:
            cold_cache = ResultCache(cache_root)
            with SweepExecutor(jobs=1, cache=cold_cache) as ex:
                t0 = time.perf_counter()
                tables_serial, n_points, events = _run_plans(plans, ex)
                serial_s = time.perf_counter() - t0

            with SweepExecutor(jobs=jobs, cache=None) as ex:
                t0 = time.perf_counter()
                tables_par, _, _ = _run_plans(plans, ex)
                parallel_s = time.perf_counter() - t0

            warm_cache = ResultCache(cache_root)
            with SweepExecutor(jobs=1, cache=warm_cache) as ex:
                t0 = time.perf_counter()
                tables_warm, _, _ = _run_plans(plans, ex)
                warm_s = time.perf_counter() - t0
            warm_hits = warm_cache.hits
        finally:
            shutil.rmtree(cache_root, ignore_errors=True)

        identical = (
            [t.to_dict() for t in tables_serial]
            == [t.to_dict() for t in tables_par]
            == [t.to_dict() for t in tables_warm])
        all_identical = all_identical and identical
        table.add_row(
            bench_id, n_points, events, round(serial_s, 3),
            round(parallel_s, 3), ratio(serial_s, parallel_s),
            round(warm_s, 3), ratio(serial_s, warm_s), warm_hits,
            "yes" if identical else "no")
        tot_points += n_points
        tot_events += events
        tot_hits += warm_hits
        tot_serial += serial_s
        tot_par += parallel_s
        tot_warm += warm_s
    table.add_row(
        "TOTAL", tot_points, tot_events, round(tot_serial, 3),
        round(tot_par, 3), ratio(tot_serial, tot_par),
        round(tot_warm, 3), ratio(tot_serial, tot_warm), tot_hits,
        "yes" if all_identical else "no")
    table.add_note(f"host_cpus={os.cpu_count()}, parallel leg ran --jobs {jobs}")
    table.add_note(
        "wall-clock columns measure the host (warn-only in compare); "
        "speedup_parallel is bounded by the cores the host grants — "
        "regenerate on a >=4-core host for the parallelism headline")
    return table
