"""Content-addressed result cache for sweep points.

Every figure sweep decomposes into pure :class:`~repro.bench.executor.Point`
work items (see ``repro.bench.executor``); this module memoizes their
results on disk so a rerun whose inputs have not changed never
re-simulates.  The design follows the network-data-cache idea the
sweep executor borrows from the WAN visualization literature: address
results by *content*, not by run, so any execution — serial, parallel,
pytest, CI — shares one store.

Key anatomy (SHA-256 over a canonical JSON document)::

    {
      "cache_schema": 1,          # bump to invalidate every entry
      "figure": "8a",             # panel the point belongs to
      "fn": "fig8_rate",          # registry name of the point function
      "params": {...},            # sort_keys canonical JSON kwargs
      "code": "<fingerprint>",    # hash over src/repro/**/*.py + git sha
      "faults": null,             # ambient FaultPlan fingerprint, or null
      "mode": "packet",           # effective simulation mode
      "cache_cfg": null,          # ambient CacheConfig fingerprint, or null
      "replication": null         # ambient ReplicationPolicy fingerprint, or null
    }

The *faults* field is :func:`repro.faults.active_fingerprint` — ``None``
unless the sweep runs inside ``with injecting(plan):`` — so results
measured under an ambient fault plan can never be confused with
fault-free ones (or with a different plan's).  Chaos points that carry
their plan explicitly in ``params`` are already distinguished by it;
this field covers ambient installation around a whole run.

The *cache_cfg* field plays the same role for the WAN block-cache
tier: it is :func:`repro.cache.active_cache_fingerprint` — ``None``
unless the sweep runs inside ``with configured(cache_config):`` — so
point results measured under different ambient cache temperatures,
placements, or stripe widths can never alias.  The wancache panels
carry their knobs explicitly in ``params``; this field covers ambient
installation (``WanCacheConfig`` fills unset knobs from the ambient
config, which would otherwise be invisible to the key).

The *replication* field does the same for replicated dispatch: it is
:func:`repro.datacutter.scheduling.active_replication_fingerprint` —
``None`` unless the sweep runs inside ``with replicating(policy):`` —
so tails points measured under different ambient (k, cancel, hedge)
settings never alias.  The tails panels carry their knobs explicitly
in ``params``; this field covers ambient installation (``TailsConfig``
fills unset knobs from the ambient policy).

The *mode* field is :func:`repro.sim.flow.effective_sim_mode` — the
simulation mode transfers actually run under (``"packet"`` or
``"fluid"``), so packet-mode and fluid-mode point results never alias
even when their values agree.

The *code fingerprint* hashes the installed ``repro`` package sources
(sorted relative paths + file contents) together with
:func:`repro.bench.runner.git_sha`, so editing any simulator source —
committed or not — invalidates every entry while doc-only edits
outside the package keep the cache warm.

Values are small JSON documents carrying the point's return value plus
its deterministic execution profile (simulation events consumed,
per-trace-kind counts), so a cache hit reproduces the full
:class:`~repro.bench.schema.BenchRecord` — tables, ``events_processed``,
``kinds``/``layers`` — bit-for-bit, not just the rows.

Storage is one file per entry under ``benchmarks/cache/`` (gitignored;
override with ``REPRO_BENCH_CACHE``), capped LRU-style by total size
(``REPRO_BENCH_CACHE_MAX_MB``, default 64): hits refresh the file
mtime, and inserts evict the stalest entries once the cap is exceeded.
Writes are atomic (tempfile + rename), so concurrent writers — the
process pool, parallel pytest — never expose a torn entry; a corrupt
or unreadable file is treated as a miss and rewritten.

CLI: ``python -m repro bench cache stats|clear``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "cache_dir",
    "code_fingerprint",
    "ResultCache",
]

#: Bump to orphan every existing entry (key and payload format changes).
CACHE_SCHEMA_VERSION = 1

#: Default size cap for the on-disk store (64 MB ~ tens of thousands of
#: points; one entry is typically well under a kilobyte).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

_SUFFIX = ".json"


def cache_dir(override: Optional[str] = None) -> str:
    """The cache directory (override > ``REPRO_BENCH_CACHE`` > default)."""
    return (override
            or os.environ.get("REPRO_BENCH_CACHE")
            or os.path.join("benchmarks", "cache"))


def _max_bytes_from_env() -> int:
    raw = os.environ.get("REPRO_BENCH_CACHE_MAX_MB", "")
    try:
        return int(float(raw) * 1024 * 1024) if raw else DEFAULT_MAX_BYTES
    except ValueError:
        return DEFAULT_MAX_BYTES


_fingerprint: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """Hash of the ``repro`` package sources plus the git sha.

    Memoized per process — the sweep executor computes thousands of
    cache keys per run, and the tree does not change underneath one.
    """
    global _fingerprint
    if _fingerprint is not None and not refresh:
        return _fingerprint
    import repro
    from repro.bench.runner import git_sha

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    digest.update(git_sha().encode())
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in filenames:
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                sources.append((os.path.relpath(path, root), path))
    for rel, path in sorted(sources):
        digest.update(rel.encode())
        digest.update(b"\0")
        try:
            with open(path, "rb") as fh:
                digest.update(fh.read())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\0")
    _fingerprint = digest.hexdigest()
    return _fingerprint


class ResultCache:
    """Content-addressed point-result store with an LRU size cap.

    ``hits`` / ``misses`` count lookups over this instance's lifetime;
    the executor surfaces them per run and CI gates the cached-rerun
    hit rate on them.
    """

    def __init__(self, directory: Optional[str] = None,
                 max_bytes: Optional[int] = None) -> None:
        self.directory = cache_dir(directory)
        self.max_bytes = _max_bytes_from_env() if max_bytes is None else max_bytes
        self.hits = 0
        self.misses = 0

    # -- keys ----------------------------------------------------------------

    def key(self, figure: str, fn: str, params: Dict[str, Any]) -> str:
        """SHA-256 cache key for one point (see module docstring)."""
        from repro.cache import active_cache_fingerprint
        from repro.datacutter.scheduling import (
            active_replication_fingerprint,
        )
        from repro.faults import active_fingerprint
        from repro.sim.flow import effective_sim_mode

        doc = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "figure": figure,
            "fn": fn,
            "params": params,
            "code": code_fingerprint(),
            "faults": active_fingerprint(),
            "mode": effective_sim_mode(),
            "cache_cfg": active_cache_fingerprint(),
            "replication": active_replication_fingerprint(),
        }
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + _SUFFIX)

    # -- lookups -------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for *key*, or None (counted as hit/miss).

        A hit refreshes the entry's mtime so eviction stays LRU; a
        structurally invalid or unreadable entry is a miss.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("cache_schema") != CACHE_SCHEMA_VERSION
                or "value" not in payload
                or not isinstance(payload.get("kinds"), dict)):
            self.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return payload

    def put(self, key: str, figure: str, fn: str, params: Dict[str, Any],
            value: Any, events: int, kinds: Dict[str, Dict[str, float]]) -> str:
        """Store one point result atomically; returns the entry path."""
        payload = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "figure": figure,
            "fn": fn,
            "params": params,
            "value": value,
            "events": events,
            "kinds": kinds,
        }
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
        except BaseException:
            os.unlink(tmp)
            raise
        os.replace(tmp, path)
        self._evict()
        return path

    # -- maintenance ---------------------------------------------------------

    def _entries(self):
        """[(mtime, size, path)] for every entry, oldest first."""
        if not os.path.isdir(self.directory):
            return []
        entries = []
        for name in os.listdir(self.directory):
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        entries.sort()
        return entries

    def _evict(self) -> int:
        """Drop least-recently-used entries until under the size cap."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed

    def stats(self) -> Dict[str, Any]:
        """Entry count, bytes on disk, cap, and this instance's hit/miss."""
        entries = self._entries()
        return {
            "directory": self.directory,
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for _, _, path in self._entries():
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
        return removed
