"""repro — reproduction of *Impact of High Performance Sockets on Data
Intensive Applications* (Balaji et al., HPDC 2003).

The package simulates the paper's entire stack on a deterministic
discrete-event kernel:

* :mod:`repro.sim`        — the discrete-event simulation kernel
* :mod:`repro.cluster`    — hosts, CPUs, links, switches, heterogeneity
* :mod:`repro.net`        — calibrated pipelined protocol cost models
* :mod:`repro.via`        — simulated Virtual Interface Architecture provider
* :mod:`repro.tcp`        — simulated kernel TCP/IP socket stack
* :mod:`repro.sockets`    — unified sockets API (kernel TCP & SocketVIA)
* :mod:`repro.datacutter` — the DataCutter filter-stream framework
* :mod:`repro.apps`       — visualization server, load balancer, microscope
* :mod:`repro.bench`      — experiment harness regenerating every figure

See README.md and DESIGN.md at the repository root.
"""

from repro._version import __version__
from repro import errors

__all__ = ["__version__", "errors"]
