"""Eviction policies for the block cache.

Each policy tracks residency metadata for the keys of one
:class:`~repro.cache.service.BlockCache` and answers one question:
*which resident block leaves when the cache is full?*  All three are
exactly deterministic — iteration order is insertion order (Python
dicts), tie-breaks are explicit — so a cache run is reproducible
bit-for-bit across processes and platforms.

* ``lru``  — least recently used: hits refresh recency, the victim is
  the stalest key.
* ``lfu``  — least frequently used: hits bump a counter, the victim is
  the key with the lowest count; ties fall back to LRU order among the
  tied keys.
* ``clock`` — second chance: keys sit on a ring with one reference
  bit; the hand sweeps, clearing set bits, and evicts the first key it
  finds clear.  The classic low-overhead LRU approximation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["EVICTION_POLICIES", "make_policy"]


class _LruPolicy:
    """Victim = least recently touched (dict order as recency queue)."""

    name = "lru"

    def __init__(self) -> None:
        self._order: Dict[object, None] = {}

    def on_insert(self, key) -> None:
        self._order[key] = None

    def on_hit(self, key) -> None:
        # Re-append: dicts preserve insertion order, so moving the key
        # to the tail makes the head the least recently used.
        self._order.pop(key, None)
        self._order[key] = None

    def victim(self) -> object:
        return next(iter(self._order))

    def remove(self, key) -> None:
        self._order.pop(key, None)


class _LfuPolicy:
    """Victim = lowest hit count, LRU among ties."""

    name = "lfu"

    def __init__(self) -> None:
        self._counts: Dict[object, int] = {}
        self._lru = _LruPolicy()

    def on_insert(self, key) -> None:
        self._counts[key] = 0
        self._lru.on_insert(key)

    def on_hit(self, key) -> None:
        self._counts[key] += 1
        self._lru.on_hit(key)

    def victim(self) -> object:
        lowest = min(self._counts.values())
        # The LRU order scan makes the tie-break deterministic: among
        # equally-cold keys the stalest one goes.
        for key in self._lru._order:
            if self._counts[key] == lowest:
                return key
        raise KeyError("victim() on an empty cache")

    def remove(self, key) -> None:
        self._counts.pop(key, None)
        self._lru.remove(key)


class _ClockPolicy:
    """Second-chance ring: one reference bit per key, a sweeping hand."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: List[object] = []
        self._ref: Dict[object, bool] = {}
        self._hand = 0

    def on_insert(self, key) -> None:
        # New keys join behind the hand with their bit clear, exactly
        # like a page faulted into the frame the hand just freed.
        self._ring.insert(self._hand, key)
        self._hand += 1
        self._ref[key] = False

    def on_hit(self, key) -> None:
        self._ref[key] = True

    def victim(self) -> object:
        if not self._ring:
            raise KeyError("victim() on an empty cache")
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            key = self._ring[self._hand]
            if self._ref[key]:
                self._ref[key] = False
                self._hand += 1
            else:
                return key

    def remove(self, key) -> None:
        if key not in self._ref:
            return
        idx = self._ring.index(key)
        del self._ring[idx]
        del self._ref[key]
        if idx < self._hand:
            self._hand -= 1


#: Policy name -> factory.  The names are part of cache-config
#: fingerprints (and therefore sweep-cache keys); renaming one is a
#: behavior change.
EVICTION_POLICIES = {
    "lru": _LruPolicy,
    "lfu": _LfuPolicy,
    "clock": _ClockPolicy,
}


def make_policy(name: str):
    """Instantiate an eviction policy by name."""
    try:
        return EVICTION_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; "
            f"have {sorted(EVICTION_POLICIES)}"
        ) from None


def policy_names() -> Optional[List[str]]:
    """All registered policy names, sorted."""
    return sorted(EVICTION_POLICIES)
