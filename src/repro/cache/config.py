"""Declarative cache/stripe configuration with an ambient context.

:class:`CacheConfig` bundles the knobs that change *what a measurement
means* when a block-cache tier sits between storage and the client:
where the cache lives, how it evicts, how big it is, and how many
parallel stripes a logical read fans across.  Like
:class:`repro.faults.FaultPlan`, a config can be installed *ambiently*
(:func:`configured`) so that code which builds scenarios — and, more
importantly, the sweep-result cache — can observe it without parameter
threading:

* :func:`repro.apps.wancache.run_wan_queries` fills any knob its
  explicit config leaves as ``None`` from the ambient config;
* :meth:`repro.bench.cache.ResultCache.key` includes
  :func:`active_cache_fingerprint`, so point results measured under an
  ambient cache config can never alias results measured under a
  different one (or none) — the same partitioning PR 5 gave ambient
  fault plans;
* :func:`repro.bench.executor.execute_point` re-installs the submitting
  side's ambient config inside pool workers.

The fingerprint hashes the canonical JSON form, so two configs equal
field-for-field fingerprint identically no matter how they were built.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cache.policies import EVICTION_POLICIES

__all__ = [
    "PLACEMENTS",
    "CacheConfig",
    "active_cache_config",
    "active_cache_fingerprint",
    "set_active_cache_config",
    "configured",
]

#: Where the cache host sits relative to the WAN (docs/CACHING.md):
#: ``client`` — on the frontend host itself (a hit is a local lookup);
#: ``edge`` — on a dedicated host one LAN hop from the frontend (the
#: DPSS arrangement: a hit pays a LAN round trip at LAN rates);
#: ``storage`` — on the storage side (a hit still crosses the WAN but
#: skips the storage read penalty).
PLACEMENTS = ("client", "edge", "storage")


@dataclass(frozen=True)
class CacheConfig:
    """One block-cache + striping configuration.

    ``capacity_blocks=0`` means *unbounded* (never evict) — the bench
    panels use it so temperature, not eviction pressure, is the only
    independent variable.
    """

    placement: str = "edge"
    eviction: str = "lru"
    capacity_blocks: int = 0
    stripe_width: int = 1

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, "
                f"got {self.placement!r}"
            )
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"eviction must be one of {sorted(EVICTION_POLICIES)}, "
                f"got {self.eviction!r}"
            )
        if self.capacity_blocks < 0:
            raise ValueError("capacity_blocks must be >= 0")
        if self.stripe_width < 1:
            raise ValueError("stripe_width must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "placement": self.placement,
            "eviction": self.eviction,
            "capacity_blocks": int(self.capacity_blocks),
            "stripe_width": int(self.stripe_width),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CacheConfig":
        return cls(
            placement=d.get("placement", "edge"),
            eviction=d.get("eviction", "lru"),
            capacity_blocks=int(d.get("capacity_blocks", 0)),
            stripe_width=int(d.get("stripe_width", 1)),
        )

    def fingerprint(self) -> str:
        """Short content hash of the canonical form (cache-key field)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# -- ambient installation (mirrors repro.faults.plan) -------------------------

_active: Optional[CacheConfig] = None


def active_cache_config() -> Optional[CacheConfig]:
    """The ambiently installed config, or None."""
    return _active


def active_cache_fingerprint() -> Optional[str]:
    """Fingerprint of the ambient config, or None when none is
    installed — the value the sweep-result cache keys on."""
    if _active is None:
        return None
    return _active.fingerprint()


def set_active_cache_config(
    config: Optional[CacheConfig],
) -> Optional[CacheConfig]:
    """Install *config* ambiently; returns the previous one."""
    global _active
    previous = _active
    _active = config
    return previous


@contextmanager
def configured(config: Optional[CacheConfig]):
    """Ambiently install *config* for the duration of the block."""
    previous = set_active_cache_config(config)
    try:
        yield config
    finally:
        set_active_cache_config(previous)
