"""``repro.cache`` — the distributed block-cache tier.

The WAN-visualization literature (LBNL's DPSS work) interposes a
network block cache between storage and the client so that warm data
is served at cache-host link speed instead of re-crossing a high
bandwidth-delay-product WAN.  This package is that tier for the
simulation:

* :class:`~repro.cache.service.BlockCache` — the per-host cache
  service: block-granular get/put, LRU/LFU/clock eviction,
  deterministic hit/miss accounting, ``cache.*`` trace points;
* :class:`~repro.cache.config.CacheConfig` — declarative placement /
  eviction / capacity / stripe-width configuration with an ambient
  installation context (:func:`~repro.cache.config.configured`) that
  the sweep-result cache fingerprints, exactly like ambient fault
  plans.

The scenario that puts the tier to work is
:mod:`repro.apps.wancache`; the striped transfers that fetch misses
are :mod:`repro.transport.striped`.  See docs/CACHING.md.
"""

from repro.cache.config import (
    PLACEMENTS,
    CacheConfig,
    active_cache_config,
    active_cache_fingerprint,
    configured,
    set_active_cache_config,
)
from repro.cache.policies import EVICTION_POLICIES, make_policy
from repro.cache.service import BlockCache

__all__ = [
    "PLACEMENTS",
    "EVICTION_POLICIES",
    "BlockCache",
    "CacheConfig",
    "active_cache_config",
    "active_cache_fingerprint",
    "configured",
    "set_active_cache_config",
    "make_policy",
]
