"""The block-cache service hosted on a cluster host.

A :class:`BlockCache` holds block *identities* (the simulation never
materializes block contents — payload tokens are a pure function of
the block id, see :func:`repro.transport.striped.block_token`), with a
configurable eviction policy and exact hit/miss/insert/evict
accounting.  The cache itself is pure bookkeeping: it charges no
simulated time.  Where a hit is *served from* — and therefore what a
hit costs — is the scenario's contract (docs/CACHING.md): the
wancache application serves client-placement hits locally, edge hits
over one LAN round trip, and storage hits over the WAN minus the
storage read penalty.

Every transition emits a ``cache.*`` trace point (hit / miss / insert
/ evict / warm), registered as its own layer in
:data:`repro.sim.trace.TRACE_LAYERS`, so ``python -m repro trace`` and
the bench runner aggregate cache behavior next to the transport
layers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.cache.policies import make_policy
from repro.cluster.host import Host
from repro.sim.trace import NULL_TRACER, Tracer

__all__ = ["BlockCache"]


class BlockCache:
    """Block-granular cache on one host with deterministic accounting.

    ``capacity_blocks=0`` disables eviction (unbounded).  All
    operations are O(1)-ish plain method calls — no simulated time —
    so the cache composes with any process without perturbing event
    order.
    """

    def __init__(
        self,
        host: Host,
        capacity_blocks: int = 0,
        eviction: str = "lru",
        name: str = "cache",
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if capacity_blocks < 0:
            raise ValueError("capacity_blocks must be >= 0")
        self.host = host
        self.name = name
        self.capacity_blocks = int(capacity_blocks)
        self.eviction = eviction
        self.tracer = tracer
        self._policy = make_policy(eviction)
        self._resident: Dict[object, None] = {}
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.warmed = 0

    # -- queries -----------------------------------------------------------------

    def __contains__(self, block_id) -> bool:
        return block_id in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def get(self, block_id) -> bool:
        """Look one block up, counting a hit or a miss."""
        if block_id in self._resident:
            self.hits += 1
            self._policy.on_hit(block_id)
            if self.tracer.enabled:
                self.tracer.emit("cache.hit", host=self.host.name,
                                 cache=self.name, block=block_id)
            return True
        self.misses += 1
        if self.tracer.enabled:
            self.tracer.emit("cache.miss", host=self.host.name,
                             cache=self.name, block=block_id)
        return False

    # -- updates -----------------------------------------------------------------

    def put(self, block_id) -> Optional[object]:
        """Insert one block; returns the evicted block id, if any.

        Re-inserting a resident block refreshes its policy state
        (counts as neither insertion nor hit).
        """
        if block_id in self._resident:
            self._policy.on_hit(block_id)
            return None
        evicted = None
        if self.capacity_blocks and len(self._resident) >= self.capacity_blocks:
            evicted = self._policy.victim()
            self._policy.remove(evicted)
            del self._resident[evicted]
            self.evictions += 1
            if self.tracer.enabled:
                self.tracer.emit("cache.evict", host=self.host.name,
                                 cache=self.name, block=evicted)
        self._resident[block_id] = None
        self._policy.on_insert(block_id)
        self.insertions += 1
        if self.tracer.enabled:
            self.tracer.emit("cache.insert", host=self.host.name,
                             cache=self.name, block=block_id)
        return evicted

    def warm(self, block_ids: Iterable) -> int:
        """Pre-populate without touching the hit/miss counters.

        Sets the cache's *temperature* before a measurement: the number
        of blocks actually admitted (capacity permitting, insertion
        order) is returned and counted in :attr:`warmed`.
        """
        admitted = 0
        for block_id in block_ids:
            if block_id in self._resident:
                continue
            if self.capacity_blocks and \
                    len(self._resident) >= self.capacity_blocks:
                break
            self._resident[block_id] = None
            self._policy.on_insert(block_id)
            admitted += 1
        self.warmed += admitted
        if self.tracer.enabled and admitted:
            self.tracer.emit("cache.warm", host=self.host.name,
                             cache=self.name, blocks=admitted)
        return admitted

    def resident(self) -> List[object]:
        """Resident block ids in insertion order (diagnostics/tests)."""
        return list(self._resident)

    # -- accounting --------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "warmed": self.warmed,
            "resident": len(self._resident),
        }

    def __repr__(self) -> str:  # pragma: no cover
        cap = self.capacity_blocks or "inf"
        return (f"<BlockCache {self.name!r}@{self.host.name} "
                f"{len(self._resident)}/{cap} {self.eviction}>")
