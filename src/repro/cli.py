"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure <id>``
    Regenerate one paper figure (4a, 4b, 7a, 7b, 8a, 8b, 9a, 9b, 10,
    11) and print its table.  ``--quick`` shrinks the axes.
``microbench``
    Both Figure-4 panels (alias for ``figure 4a`` + ``figure 4b``).
``calibration``
    Show the calibrated cost-model parameters next to the paper's
    targets.
``trace <figure>``
    Run a figure (quick axes by default) with cross-layer trace
    recording on and print per-kind counts, the layers covered, and a
    sample of records.
``list``
    List available figures with their runtime class.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro._version import __version__

__all__ = ["main"]


def _figure_registry() -> Dict[str, Callable]:
    from repro.bench import figures as f

    return {
        "2": lambda quick: f.fig2_message_size_economics(),
        "4a": lambda quick: f.fig4a_latency(
            sizes=[4, 256, 4096] if quick else None),
        "4b": lambda quick: f.fig4b_bandwidth(
            sizes=[2048, 16384, 65536] if quick else None),
        "7a": lambda quick: f.fig7_update_rate_guarantee(
            0.0, rates=[4.0, 3.25, 2.0] if quick else None,
            frames=2 if quick else 3),
        "7b": lambda quick: f.fig7_update_rate_guarantee(
            18.0, rates=[3.25, 2.0] if quick else None,
            frames=2 if quick else 3),
        "8a": lambda quick: f.fig8_latency_guarantee(
            0.0, bounds_us=[1000, 400, 100] if quick else None,
            frames=2 if quick else 3),
        "8b": lambda quick: f.fig8_latency_guarantee(
            18.0, bounds_us=[1000, 400, 200] if quick else None,
            frames=2 if quick else 3),
        "9a": lambda quick: f.fig9_query_mix(
            0.0, fractions=[0.0, 0.6, 1.0] if quick else None,
            n_queries=6 if quick else 10),
        "9b": lambda quick: f.fig9_query_mix(
            18.0, fractions=[0.0, 1.0] if quick else None,
            n_queries=6 if quick else 10),
        "10": lambda quick: f.fig10_rr_reaction(
            factors=[2, 10] if quick else None,
            total_bytes=(4 if quick else 8) * 1024 * 1024),
        "11": lambda quick: f.fig11_dd_heterogeneity(
            probabilities=[0.1, 0.9] if quick else None,
            factors=[2, 8] if quick else None,
            total_bytes=(2 if quick else 8) * 1024 * 1024),
    }

#: Rough full-axis runtimes, shown by ``list``.
_RUNTIME_HINT = {
    "2": "instant", "4a": "~1 min", "4b": "~3 min", "7a": "~3 min", "7b": "~2.5 min",
    "8a": "~30 s", "8b": "~25 s", "9a": "~1 min", "9b": "~1 min",
    "10": "~3 s", "11": "~11 s",
}


def cmd_figure(args: argparse.Namespace) -> int:
    registry = _figure_registry()
    fig_id = args.id.lower().lstrip("fig")
    if fig_id not in registry:
        print(f"unknown figure {args.id!r}; have {sorted(registry)}",
              file=sys.stderr)
        return 2
    table = registry[fig_id](args.quick)
    print(table.render())
    if args.save:
        path = table.save(args.save)
        print(f"\nsaved to {path}")
    return 0


def cmd_microbench(args: argparse.Namespace) -> int:
    for fig_id in ("4a", "4b"):
        args.id = fig_id
        rc = cmd_figure(args)
        if rc:
            return rc
        print()
    return 0


def cmd_calibration(_args: argparse.Namespace) -> int:
    from repro.net import MODELS, PAPER_MICROBENCH

    print("Calibrated transport models (times in us, gaps in ns/B):\n")
    header = (f"{'model':<12}{'lat(4B)':>9}{'peak Mbps':>11}{'o_msg':>8}"
              f"{'o_seg':>8}{'g_wire':>8}{'mtu':>8}")
    print(header)
    print("-" * len(header))
    for name, m in sorted(MODELS.items()):
        print(f"{name:<12}{m.des_message_latency(4) * 1e6:>9.2f}"
              f"{m.peak_bandwidth_mbps:>11.1f}"
              f"{m.o_send_msg * 1e6:>8.2f}{m.o_send_seg * 1e6:>8.2f}"
              f"{m.g_wire * 1e9:>8.2f}{m.mtu:>8}")
    print("\nPaper targets:", PAPER_MICROBENCH)
    return 0


#: Trace-point kind prefix -> the architectural layer it instruments.
_TRACE_LAYERS = {
    "tcp.": "transport",
    "udp.": "transport",
    "via.": "transport",
    "sockets.": "sockets",
    "datacutter.": "datacutter",
    "cluster.": "cluster",
}


def _trace_layer(kind: str) -> str:
    for prefix, layer in _TRACE_LAYERS.items():
        if kind.startswith(prefix):
            return layer
    return "other"


def cmd_trace(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.sim.trace import tracing

    registry = _figure_registry()
    fig_id = args.id.lower().lstrip("fig")
    if fig_id not in registry:
        print(f"unknown figure {args.id!r}; have {sorted(registry)}",
              file=sys.stderr)
        return 2
    with tracing() as tracer:
        table = registry[fig_id](not args.full)
    records = list(tracer.records)
    if args.kind:
        records = [r for r in records
                   if r.kind == args.kind
                   or r.kind.startswith(args.kind + ".")]
    print(table.render())

    counts = Counter(r.kind for r in records)
    layers = sorted({_trace_layer(k) for k in counts})
    print(f"\ntrace: {len(records)} records"
          f"{' (ring-buffer truncated)' if len(tracer.records) == tracer.records.maxlen else ''}"
          f" across {len(counts)} kinds, layers: {', '.join(layers) or 'none'}")
    for kind in sorted(counts):
        print(f"  {kind:<18} {counts[kind]:>8}  [{_trace_layer(kind)}]")
    if args.limit:
        shown = records[-args.limit:]
        print(f"\nlast {len(shown)} records:")
        for rec in shown:
            print(f"  {rec!r}")
    if args.out:
        import json

        with open(args.out, "w") as fh:
            for rec in records:
                fh.write(json.dumps(
                    {"time": rec.time, "kind": rec.kind, **rec.fields},
                    default=str,
                ) + "\n")
        print(f"\nwrote {len(records)} records to {args.out}")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("figures (python -m repro figure <id>):")
    for fig_id in sorted(_figure_registry()):
        print(f"  {fig_id:<4} {_RUNTIME_HINT.get(fig_id, '')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Impact of High Performance Sockets on "
            "Data Intensive Applications' (HPDC 2003)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command")

    p_fig = sub.add_parser("figure", help="regenerate one paper figure")
    p_fig.add_argument("id", help="4a, 4b, 7a, 7b, 8a, 8b, 9a, 9b, 10, 11")
    p_fig.add_argument("--quick", action="store_true", help="reduced axes")
    p_fig.add_argument("--save", metavar="DIR", default=None,
                       help="also write the table to DIR")
    p_fig.set_defaults(func=cmd_figure)

    p_micro = sub.add_parser("microbench", help="both Figure-4 panels")
    p_micro.add_argument("--quick", action="store_true")
    p_micro.add_argument("--save", metavar="DIR", default=None)
    p_micro.set_defaults(func=cmd_microbench)

    p_cal = sub.add_parser("calibration", help="show model parameters")
    p_cal.set_defaults(func=cmd_calibration)

    p_trace = sub.add_parser(
        "trace", help="run a figure with cross-layer tracing on"
    )
    p_trace.add_argument("id", help="figure id, e.g. 4a or fig4a")
    p_trace.add_argument("--kind", default=None,
                         help="only count/show this kind (prefix match)")
    p_trace.add_argument("--limit", type=int, default=10, metavar="N",
                         help="print the last N records (default 10, 0=none)")
    p_trace.add_argument("--full", action="store_true",
                         help="full figure axes instead of quick ones")
    p_trace.add_argument("--out", metavar="FILE", default=None,
                         help="dump matching records as JSON lines")
    p_trace.set_defaults(func=cmd_trace)

    p_list = sub.add_parser("list", help="list available figures")
    p_list.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 1
    return args.func(args)
