"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure <id>``
    Regenerate one paper figure (4a, 4b, 7a, 7b, 8a, 8b, 9a, 9b, 10,
    11) and print its table.  ``--quick`` shrinks the axes.
``microbench``
    Both Figure-4 panels (alias for ``figure 4a`` + ``figure 4b``).
``calibration``
    Show the calibrated cost-model parameters next to the paper's
    targets.
``trace <figure>``
    Run a figure (quick axes by default) with cross-layer trace
    recording on and print per-kind counts, the layers covered, and a
    sample of records.
``serve``
    Run one open-loop serving scenario (docs/SERVING.md) and print its
    capacity report: offered/admitted/dropped counts, sustained
    throughput, exact p50/p99 latency per query kind, and admission
    queue stats.  The full sweep is ``bench run serve``.
``tails``
    Run one replicated-dispatch scenario (docs/TAILS.md) and print its
    tail-latency report: exact p50/p99/p999, the replica conservation
    ledger (dispatched/completed/retracted), hedge counts, and
    executed work.  The full sweep is ``bench run tails``.
``bench run|compare|report|list``
    The benchmark harness: run experiment suites into schema-versioned
    ``BENCH_<experiment>.json`` records (``--jobs N`` fans the figure
    sweeps out over a process pool; results are memoized in the
    content-addressed cache unless ``--no-cache``), gate them against
    the committed baselines, and regenerate the experiment docs.
``bench cache stats|clear``
    Inspect or empty the content-addressed point-result cache under
    ``benchmarks/cache/``.
``list``
    List available figures with their runtime class.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro._version import __version__

__all__ = ["main"]


def _figure_registry() -> Dict[str, Callable]:
    from repro.bench.suites import FIGURES

    return FIGURES


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.sim.flow import simulation_mode

    registry = _figure_registry()
    fig_id = args.id.lower().lstrip("fig")
    if fig_id not in registry:
        print(f"unknown figure {args.id!r}; have {sorted(registry)}",
              file=sys.stderr)
        return 2
    with simulation_mode(getattr(args, "mode", None)):
        table = registry[fig_id](args.quick)
    print(table.render())
    if args.save:
        path = table.save(args.save)
        print(f"\nsaved to {path}")
    return 0


def cmd_microbench(args: argparse.Namespace) -> int:
    for fig_id in ("4a", "4b"):
        args.id = fig_id
        rc = cmd_figure(args)
        if rc:
            return rc
        print()
    return 0


def cmd_calibration(_args: argparse.Namespace) -> int:
    from repro.net import MODELS, PAPER_MICROBENCH

    print("Calibrated transport models (times in us, gaps in ns/B):\n")
    header = (f"{'model':<12}{'lat(4B)':>9}{'peak Mbps':>11}{'o_msg':>8}"
              f"{'o_seg':>8}{'g_wire':>8}{'mtu':>8}")
    print(header)
    print("-" * len(header))
    for name, m in sorted(MODELS.items()):
        print(f"{name:<12}{m.des_message_latency(4) * 1e6:>9.2f}"
              f"{m.peak_bandwidth_mbps:>11.1f}"
              f"{m.o_send_msg * 1e6:>8.2f}{m.o_send_seg * 1e6:>8.2f}"
              f"{m.g_wire * 1e9:>8.2f}{m.mtu:>8}")
    print("\nPaper targets:", PAPER_MICROBENCH)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.sim.trace import layer_of as _trace_layer
    from repro.sim.trace import tracing

    registry = _figure_registry()
    fig_id = args.id.lower().lstrip("fig")
    if fig_id not in registry:
        print(f"unknown figure {args.id!r}; have {sorted(registry)}",
              file=sys.stderr)
        return 2
    with tracing() as tracer:
        table = registry[fig_id](not args.full)
    records = list(tracer.records)
    if args.kind:
        records = [r for r in records
                   if r.kind == args.kind
                   or r.kind.startswith(args.kind + ".")]
    print(table.render())

    counts = Counter(r.kind for r in records)
    layers = sorted({_trace_layer(k) for k in counts})
    print(f"\ntrace: {len(records)} records"
          f"{' (ring-buffer truncated)' if len(tracer.records) == tracer.records.maxlen else ''}"
          f" across {len(counts)} kinds, layers: {', '.join(layers) or 'none'}")
    for kind in sorted(counts):
        print(f"  {kind:<18} {counts[kind]:>8}  [{_trace_layer(kind)}]")
    if args.limit:
        shown = records[-args.limit:]
        print(f"\nlast {len(shown)} records:")
        for rec in shown:
            print(f"  {rec!r}")
    if args.out:
        import json

        with open(args.out, "w") as fh:
            for rec in records:
                fh.write(json.dumps(
                    {"time": rec.time, "kind": rec.kind, **rec.fields},
                    default=str,
                ) + "\n")
        print(f"\nwrote {len(records)} records to {args.out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.apps.serve import ServeConfig, run_serve
    from repro.apps.workload import QUERY_KINDS
    from repro.sim.flow import simulation_mode

    config = ServeConfig(
        protocol=args.protocol,
        hosts=args.hosts,
        rate_per_shard=args.rate,
        horizon=args.horizon,
        queue_capacity=args.capacity,
        arrival=args.arrival,
        seed=args.seed,
    )
    stats = None
    with simulation_mode(args.mode):
        if args.jobs is None:
            result = run_serve(config)
        else:
            from repro.bench.cache import ResultCache
            from repro.bench.executor import SweepExecutor
            from repro.sim.partition import run_serve_parallel

            cache = (ResultCache(args.cache_dir)
                     if args.cache_dir else None)
            with SweepExecutor(jobs=args.jobs, cache=cache) as executor:
                result, stats = run_serve_parallel(config, executor=executor)
    print(f"serve: {args.protocol} on {args.hosts} hosts "
          f"({config.n_shards} shards), {args.arrival} arrivals at "
          f"{args.rate:g} q/s/shard over {args.horizon:g} s")
    print(f"  offered   : {result.offered}")
    print(f"  admitted  : {result.admitted}")
    print(f"  dropped   : {result.dropped} "
          f"(drop rate {result.drop_rate:.3f})")
    print(f"  completed : {result.completed}")
    print(f"  throughput: {result.throughput:,.0f} q/s sustained")
    print(f"  latency   : p50 {result.p50 * 1e3:.3f} ms, "
          f"p99 {result.p99 * 1e3:.3f} ms")
    for kind in QUERY_KINDS:
        if result.latencies[kind]:
            print(f"    {kind:<9}: p50 {result.latency_p(50, kind) * 1e3:.3f} ms, "
                  f"p99 {result.latency_p(99, kind) * 1e3:.3f} ms "
                  f"({len(result.latencies[kind])} queries)")
    print(f"  queueing  : high water {result.high_water}/{args.capacity}, "
          f"{result.events_per_query:.1f} kernel events/query")
    print(f"  digest    : {result.digest()}")
    if stats is not None:
        print(f"  sharding  : {stats['points']} chunk(s) over "
              f"{stats['jobs']} worker(s)")
        print(f"  cache: {stats['cache_hits']} hit(s), "
              f"{stats['cache_misses']} miss(es)")
    return 0


def cmd_tails(args: argparse.Namespace) -> int:
    from repro.apps.tails import TailsConfig, run_tails
    from repro.faults.plan import injecting
    from repro.faults.presets import get_preset
    from repro.sim.flow import simulation_mode

    try:
        plan = get_preset(args.plan)
    except Exception as exc:
        print(str(exc), file=sys.stderr)
        return 2
    config = TailsConfig(
        protocol=args.protocol,
        k=args.k,
        cancel=args.cancel,
        hedge_us=args.hedge_us,
        n_workers=args.workers,
        n_queries=args.queries,
        rate=args.rate,
        seed=args.seed,
    )
    with simulation_mode(args.mode), injecting(plan):
        result = run_tails(config)
    policy = result.policy
    print(f"tails: {args.protocol} on {args.workers} workers, "
          f"{args.queries} Poisson queries at {args.rate:g} q/s, "
          f"plan={args.plan}")
    print(f"  policy    : k={policy.k} cancel={policy.cancel} "
          f"hedge_us={policy.hedge_us:g}")
    print(f"  latency   : p50 {result.latency_percentile(50) * 1e3:.3f} ms, "
          f"p99 {result.latency_percentile(99) * 1e3:.3f} ms, "
          f"p999 {result.latency_percentile(99.9) * 1e3:.3f} ms")
    print(f"  replicas  : dispatched {result.dispatched}, "
          f"completed {result.completed}, retracted {result.retracted} "
          f"(before start {result.retracted_before_start}, "
          f"mid-compute {result.retracted_started})")
    print(f"  hedges    : sent {result.hedges_sent}, "
          f"skipped {result.hedges_skipped}, "
          f"clamped {result.replication_clamped}")
    print(f"  work      : {result.work_executed * 1e3:.3f} ms executed "
          f"core-time, makespan {result.elapsed * 1e3:.3f} ms")
    ok = "exact" if result.conservation_ok else "VIOLATED"
    print(f"  conserved : completed == dispatched - retracted ({ok})")
    return 0 if result.conservation_ok else 1


def cmd_list(_args: argparse.Namespace) -> int:
    from repro.bench.suites import RUNTIME_HINT

    print("figures (python -m repro figure <id>):")
    for fig_id in sorted(_figure_registry()):
        print(f"  {fig_id:<4} {RUNTIME_HINT.get(fig_id, '')}")
    return 0


# ---------------------------------------------------------------------------
# bench: the measurement harness
# ---------------------------------------------------------------------------


def _resolve_experiments(names, for_run: bool) -> list:
    """Map CLI experiment ids to canonical suite ids (exit code 2 on
    unknown names is handled by the caller catching KeyError)."""
    from repro.bench.suites import get_suite

    return [get_suite(n).bench_id for n in names]


def cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import baselines, runner
    from repro.bench.cache import ResultCache
    from repro.bench.executor import SweepExecutor
    from repro.sim.flow import simulation_mode

    try:
        experiments = _resolve_experiments(args.experiments, for_run=True)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    out_dir = baselines.results_dir(args.results)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    with simulation_mode(args.mode), \
            SweepExecutor(jobs=args.jobs, cache=cache) as executor:
        for exp in experiments:
            record = runner.run_experiment(
                exp, quick=args.quick, progress=print, executor=executor,
                profile_dir=out_dir if args.profile else None)
            for panel in sorted(record.tables):
                print()
                print(record.table(panel).render())
            bad_anchors = [a for a in record.anchors if not a["ok"]]
            bad_claims = [c for c in record.claims if not c["passed"]]
            print(f"\n{exp}: {len(record.anchors)} anchors "
                  f"({len(bad_anchors)} outside paper tolerance), "
                  f"{len(record.claims)} claims "
                  f"({len(bad_claims)} failed), "
                  f"{sum(s['events'] for s in record.layers.values())} trace "
                  f"events in {record.wall_time_s:.1f} s "
                  f"(jobs={executor.jobs}, mode={record.sim_mode})")
            for a in bad_anchors:
                print(f"  ANCHOR MISS {a['key']}: paper {a['paper']}, "
                      f"measured {a['measured']}")
            for c in bad_claims:
                print(f"  CLAIM FAILED {c['key']}: {c['description']}")
            path = baselines.store_record(record, out_dir)
            print(f"wrote {path}")
            if args.update_baseline:
                bpath = baselines.store_record(
                    record, baselines.baseline_dir(args.baselines))
                print(f"updated baseline {bpath}")
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"in {cache.directory}")
    return 0


def cmd_bench_cache(args: argparse.Namespace) -> int:
    import json

    from repro.bench.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.directory}")
        return 0
    stats = cache.stats()
    if args.json:
        print(json.dumps({k: stats[k] for k in
                          ("directory", "entries", "total_bytes", "max_bytes")}))
    else:
        print(f"directory : {stats['directory']}")
        print(f"entries   : {stats['entries']}")
        print(f"size      : {stats['total_bytes']} / {stats['max_bytes']} bytes")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench.comparator import Tolerance, compare_dirs

    try:
        experiments = (_resolve_experiments(args.experiments, for_run=False)
                       or None)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    tol = Tolerance(rel_warn=args.rel_warn, rel_fail=args.rel_fail)
    comparisons = compare_dirs(args.results, args.baselines, experiments, tol)
    if not comparisons:
        print("nothing to compare: run `python -m repro bench run <experiment>` "
              "first", file=sys.stderr)
        return 2
    worst = "pass"
    for comp in comparisons:
        print(comp.render(verbose=args.verbose))
        if comp.status == "fail":
            worst = "fail"
        elif comp.status == "warn" and worst == "pass":
            worst = "warn"
    print(f"\nbench compare: {worst.upper()} "
          f"({len(comparisons)} experiment(s), "
          f"rel_warn={tol.rel_warn}, rel_fail={tol.rel_fail})")
    return 1 if worst == "fail" else 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    import os

    from repro.bench import baselines, report

    directory = baselines.baseline_dir(args.baselines)
    try:
        records = baselines.load_all(directory)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not records:
        print(f"no BENCH_*.json records in {directory!r}", file=sys.stderr)
        return 2
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as fh:
        fh.write(report.generate_document(records))
    print(f"wrote {args.out} ({len(records)} experiment(s))")
    if args.experiments_md and os.path.exists(args.experiments_md):
        with open(args.experiments_md) as fh:
            text = fh.read()
        new_text, updated, unmatched = report.update_marked_file(text, records)
        if new_text != text:
            with open(args.experiments_md, "w") as fh:
                fh.write(new_text)
        print(f"{args.experiments_md}: "
              f"{len(updated)} marked block(s) regenerated"
              + (f", {len(unmatched)} without a committed record: "
                 f"{unmatched}" if unmatched else ""))
    return 0


def cmd_bench_list(_args: argparse.Namespace) -> int:
    from repro.bench import baselines
    from repro.bench.schema import BenchRecord, SchemaError
    from repro.bench.suites import SUITES

    have = baselines.discover(baselines.baseline_dir())
    print("bench experiments (python -m repro bench run <id>):")
    for bench_id, suite in sorted(SUITES.items()):
        if bench_id in have:
            try:
                mode = BenchRecord.load(have[bench_id]).sim_mode
            except (OSError, SchemaError):
                mode = None
            marker = f"baseline, mode={mode or 'unrecorded'}"
        else:
            marker = "no baseline"
        print(f"  {bench_id:<6} panels {'+'.join(suite.panels):<6} "
              f"[{suite.runtime_hint}] ({marker})")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.errors import FaultPlanError
    from repro.faults import get_preset, preset_names

    if args.faults_command == "describe":
        try:
            plan = get_preset(args.plan)
        except FaultPlanError as exc:
            print(f"error: {exc}")
            return 1
        print(plan.describe())
        return 0
    print("named fault plans (python -m repro faults describe <name>):")
    for name in preset_names():
        plan = get_preset(name)
        summary = ("empty" if plan.is_empty else
                   f"{len(plan.links)} link pattern(s), "
                   f"{len(plan.hosts)} host(s)")
        print(f"  {name:<14} seed={plan.seed:<3} {summary}")
    print("use: with injecting(get_preset(name)): ...   "
          "(see docs/RESILIENCE.md)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Impact of High Performance Sockets on "
            "Data Intensive Applications' (HPDC 2003)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command")

    p_fig = sub.add_parser("figure", help="regenerate one paper figure")
    p_fig.add_argument("id", help="4a, 4b, 7a, 7b, 8a, 8b, 9a, 9b, 10, 11")
    p_fig.add_argument("--quick", action="store_true", help="reduced axes")
    p_fig.add_argument("--save", metavar="DIR", default=None,
                       help="also write the table to DIR")
    p_fig.add_argument("--mode", choices=("packet", "fluid", "auto"),
                       default=None,
                       help="simulation mode (default: REPRO_SIM_MODE env "
                            "or packet)")
    p_fig.set_defaults(func=cmd_figure)

    p_micro = sub.add_parser("microbench", help="both Figure-4 panels")
    p_micro.add_argument("--quick", action="store_true")
    p_micro.add_argument("--save", metavar="DIR", default=None)
    p_micro.set_defaults(func=cmd_microbench)

    p_cal = sub.add_parser("calibration", help="show model parameters")
    p_cal.set_defaults(func=cmd_calibration)

    p_trace = sub.add_parser(
        "trace", help="run a figure with cross-layer tracing on"
    )
    p_trace.add_argument("id", help="figure id, e.g. 4a or fig4a")
    p_trace.add_argument("--kind", default=None,
                         help="only count/show this kind (prefix match)")
    p_trace.add_argument("--limit", type=int, default=10, metavar="N",
                         help="print the last N records (default 10, 0=none)")
    p_trace.add_argument("--full", action="store_true",
                         help="full figure axes instead of quick ones")
    p_trace.add_argument("--out", metavar="FILE", default=None,
                         help="dump matching records as JSON lines")
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve", help="run one open-loop serving scenario"
    )
    p_serve.add_argument("--protocol", choices=("socketvia", "tcp"),
                         default="socketvia")
    p_serve.add_argument("--hosts", type=int, default=64,
                         help="cluster width; shards = hosts // 2 "
                              "(default 64)")
    p_serve.add_argument("--rate", type=float, default=300.0,
                         help="offered queries/second per shard "
                              "(default 300)")
    p_serve.add_argument("--horizon", type=float, default=0.05,
                         help="arrival window, simulated seconds "
                              "(default 0.05)")
    p_serve.add_argument("--capacity", type=int, default=8,
                         help="admission queue depth per shard (default 8)")
    p_serve.add_argument("--arrival", choices=("poisson", "bursty"),
                         default="poisson",
                         help="arrival process (bursty = MMPP on/off)")
    p_serve.add_argument("--seed", type=int, default=17)
    p_serve.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="run shard-parallel across N worker "
                              "processes (0 = one per CPU; default: "
                              "single process).  The merged result is "
                              "digest-identical to the serial run")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="with --jobs: memoize per-chunk results "
                              "in this content-addressed cache dir")
    p_serve.add_argument("--mode", choices=("packet", "fluid", "auto"),
                         default=None,
                         help="simulation mode (default: REPRO_SIM_MODE "
                              "env or packet)")
    p_serve.set_defaults(func=cmd_serve)

    p_tails = sub.add_parser(
        "tails", help="run one replicated-dispatch tail-latency scenario"
    )
    p_tails.add_argument("--protocol", choices=("socketvia", "tcp"),
                         default="socketvia")
    p_tails.add_argument("--k", type=int, default=2,
                         help="replicas per query (default 2)")
    p_tails.add_argument("--cancel", choices=("lazy", "none"),
                         default="lazy",
                         help="loser handling: lazy kernel cancellation "
                              "or run to completion (default lazy)")
    p_tails.add_argument("--hedge-us", type=float, default=None,
                         metavar="US", dest="hedge_us",
                         help="hedge deadline in microseconds; 0 races "
                              "all k replicas from dispatch (default: "
                              "policy default, ~2x service time)")
    p_tails.add_argument("--workers", type=int, default=6,
                         help="worker copies (default 6)")
    p_tails.add_argument("--queries", type=int, default=400,
                         help="Poisson query count (default 400)")
    p_tails.add_argument("--rate", type=float, default=3200.0,
                         help="offered load in queries/s (default 3200)")
    p_tails.add_argument("--plan", default="none", metavar="PRESET",
                         help="fault preset (see 'faults list'; "
                              "default none)")
    p_tails.add_argument("--seed", type=int, default=29)
    p_tails.add_argument("--mode", choices=("packet", "fluid", "auto"),
                         default=None,
                         help="simulation mode override (default: "
                              "REPRO_SIM_MODE or auto)")
    p_tails.set_defaults(func=cmd_tails)

    p_list = sub.add_parser("list", help="list available figures")
    p_list.set_defaults(func=cmd_list)

    p_bench = sub.add_parser(
        "bench", help="benchmark harness: run, regression-gate, report"
    )
    p_bench.set_defaults(func=lambda args: (p_bench.print_help(), 1)[1])
    bsub = p_bench.add_subparsers(dest="bench_command")

    pb_run = bsub.add_parser(
        "run", help="run experiment suites into BENCH_<exp>.json records"
    )
    pb_run.add_argument("experiments", nargs="+",
                        help="suite ids, e.g. fig02 fig04 (also: 4, fig4)")
    pb_run.add_argument("--quick", action="store_true",
                        help="reduced axes (recorded in the output)")
    pb_run.add_argument("--results", metavar="DIR", default=None,
                        help="output dir (default benchmarks/results)")
    pb_run.add_argument("--update-baseline", action="store_true",
                        help="also copy the record into the baseline dir")
    pb_run.add_argument("--baselines", metavar="DIR", default=None,
                        help="baseline dir (default benchmarks/baselines)")
    pb_run.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="point-sweep workers (default REPRO_JOBS or 1; "
                             "0 = one per CPU)")
    pb_run.add_argument("--no-cache", action="store_true",
                        help="skip the content-addressed point-result cache")
    pb_run.add_argument("--profile", action="store_true",
                        help="cProfile each panel; write the top-20 "
                             "cumulative lines to "
                             "PROFILE_<exp>_<panel>.txt next to the "
                             "results (driver process only — pool "
                             "workers are not profiled)")
    pb_run.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="cache dir (default REPRO_BENCH_CACHE or "
                             "benchmarks/cache)")
    pb_run.add_argument("--mode", choices=("packet", "fluid", "auto"),
                        default=None,
                        help="simulation mode for the run (default: "
                             "REPRO_SIM_MODE env or packet); recorded in "
                             "the output and the cache key")
    pb_run.set_defaults(func=cmd_bench_run)

    pb_cmp = bsub.add_parser(
        "compare", help="diff run records against the committed baselines"
    )
    pb_cmp.add_argument("experiments", nargs="*",
                        help="suites to compare (default: every run record)")
    pb_cmp.add_argument("--results", metavar="DIR", default=None)
    pb_cmp.add_argument("--baselines", metavar="DIR", default=None)
    pb_cmp.add_argument("--rel-warn", type=float, default=0.01,
                        help="relative delta that starts warning (default 1%%)")
    pb_cmp.add_argument("--rel-fail", type=float, default=0.05,
                        help="relative delta that fails the gate (default 5%%)")
    pb_cmp.add_argument("--verbose", action="store_true",
                        help="print every compared metric, not just drifts")
    pb_cmp.set_defaults(func=cmd_bench_compare)

    pb_rep = bsub.add_parser(
        "report", help="regenerate experiment docs from the baselines"
    )
    pb_rep.add_argument("--baselines", metavar="DIR", default=None)
    pb_rep.add_argument("--out", metavar="FILE",
                        default="docs/EXPERIMENTS_GENERATED.md",
                        help="generated document path")
    pb_rep.add_argument("--experiments-md", metavar="FILE",
                        default="EXPERIMENTS.md",
                        help="file whose bench:begin/end blocks to refresh "
                             "('' skips)")
    pb_rep.set_defaults(func=cmd_bench_report)

    pb_list = bsub.add_parser("list", help="list bench experiments")
    pb_list.set_defaults(func=cmd_bench_list)

    pb_cache = bsub.add_parser(
        "cache", help="inspect or clear the point-result cache"
    )
    pb_cache.set_defaults(func=lambda args: (pb_cache.print_help(), 1)[1])
    csub = pb_cache.add_subparsers(dest="cache_command")
    pc_stats = csub.add_parser("stats", help="entry count and size on disk")
    pc_stats.add_argument("--cache-dir", metavar="DIR", default=None)
    pc_stats.add_argument("--json", action="store_true",
                          help="machine-readable output (used by CI)")
    pc_stats.set_defaults(func=cmd_bench_cache, cache_command="stats")
    pc_clear = csub.add_parser("clear", help="delete every cache entry")
    pc_clear.add_argument("--cache-dir", metavar="DIR", default=None)
    pc_clear.set_defaults(func=cmd_bench_cache, cache_command="clear")

    p_faults = sub.add_parser(
        "faults", help="list or describe the named fault plans"
    )
    p_faults.set_defaults(func=cmd_faults, faults_command="list")
    fsub = p_faults.add_subparsers(dest="faults_command")
    pf_list = fsub.add_parser("list", help="list the preset fault plans")
    pf_list.set_defaults(func=cmd_faults, faults_command="list")
    pf_desc = fsub.add_parser(
        "describe", help="print one plan's faults and fingerprint"
    )
    pf_desc.add_argument("plan", help="plan name, e.g. chaos-fig8")
    pf_desc.set_defaults(func=cmd_faults, faults_command="describe")
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 1
    return args.func(args)
